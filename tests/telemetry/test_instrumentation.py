"""Instrumentation of the runtime stack: timings, metrics, reconciliation."""

from __future__ import annotations

import pytest

import repro
from repro.applications.chemistry import fermi_hubbard_chain, jordan_wigner_scb
from repro.runtime import (
    ProcessExecutor,
    RunSpec,
    Session,
    SweepSpec,
    execute_spec,
    execute_spec_batch,
)
from repro.telemetry import metrics
from repro.telemetry.report import load_trace_dir, render_report
from repro.telemetry.schema import validate_spans

PHASES = ("compile", "plan", "evolve", "encode")


def problem(**kwargs):
    kwargs.setdefault("time", 0.3)
    return repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3}, **kwargs
    )


def hubbard_sweep(sites: int) -> SweepSpec:
    """The Annex-C shape: JW Hubbard chain, 2 strategies × 8 step counts."""
    hamiltonian = jordan_wigner_scb(fermi_hubbard_chain(sites, 1.0, 4.0))
    return SweepSpec(
        problem=repro.SimulationProblem(
            hamiltonian, 0.25, order=2, name=f"hubbard-{sites}"
        ),
        strategies=("direct", "pauli"),
        steps=tuple(range(1, 9)),
        backend="statevector",
    )


class TestPhaseTimings:
    def test_execute_spec_always_records_timings(self):
        # The per-phase split is always on — it needs no REPRO_TRACE.
        outcome = execute_spec(RunSpec(problem=problem()).to_dict(canonical=True))
        assert outcome["ok"]
        timings = outcome["timings"]
        assert set(timings) == set(PHASES)
        assert all(seconds >= 0.0 for seconds in timings.values())
        assert sum(timings.values()) <= outcome["wall_time"] * 1.05

    def test_failure_outcome_has_no_timings(self):
        outcome = execute_spec({"spec": "run"})
        assert not outcome["ok"] and "timings" not in outcome

    def test_batch_outcomes_split_timings_per_point(self):
        payloads = [
            RunSpec(
                problem=problem(), backend="sampling",
                run_kwargs={"shots": 64, "rng": index},
            ).to_dict(canonical=True)
            for index in range(4)
        ]
        outcomes = execute_spec_batch(payloads)
        assert all(o["ok"] and o["batched"] == 4 for o in outcomes)
        for outcome in outcomes:
            assert set(outcome["timings"]) == set(PHASES)
        # Copies, not one shared dict: mutating one leaves the rest alone.
        outcomes[0]["timings"]["evolve"] = -1.0
        assert outcomes[1]["timings"]["evolve"] >= 0.0

    def test_session_records_expose_timings_and_table_column(self):
        session = Session(cache=False)
        results = session.sweep(SweepSpec(problem=problem(), steps=(1, 2)))
        assert results.ok
        for record in results:
            assert set(record.timings) == set(PHASES)
        table = results.table()
        assert "phases" in table

    def test_timings_survive_the_result_json_round_trip(self):
        session = Session(cache=False)
        results = session.sweep(SweepSpec(problem=problem(), steps=(1,)))
        import json

        document = json.loads(results.to_json())
        assert set(document["records"][0]["timings"]) == set(PHASES)


class TestMetricsInstrumentation:
    def test_batch_fusion_counters(self):
        payloads = [
            RunSpec(
                problem=problem(), backend="sampling",
                run_kwargs={"shots": 64, "rng": index},
            ).to_dict(canonical=True)
            for index in range(3)
        ]
        execute_spec_batch(payloads)
        counters = metrics.snapshot()["counters"]
        assert counters["batch.points_total"] == 3
        assert counters["batch.points_fused"] == 3

    def test_singletons_count_toward_the_fusion_denominator(self):
        payload = RunSpec(problem=problem()).to_dict(canonical=True)
        execute_spec_batch([payload])
        counters = metrics.snapshot()["counters"]
        assert counters["batch.points_total"] == 1
        assert counters.get("batch.points_fused", 0) == 0

    def test_compile_memo_counters(self, monkeypatch):
        from repro.runtime import executor as executor_module

        monkeypatch.setattr(executor_module, "_PROGRAM_MEMO", {})
        spec = RunSpec(problem=problem())
        execute_spec(spec.to_dict(canonical=True))
        execute_spec(spec.to_dict(canonical=True))
        counters = metrics.snapshot()["counters"]
        assert counters["compile.memo_misses"] >= 1
        assert counters["compile.memo_hits"] >= 1

    def test_cache_counters_and_spans(self, traced, tmp_path):
        from repro.runtime.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        assert cache.get("no-such-key", None) is None
        outcome = execute_spec(RunSpec(problem=problem()).to_dict(canonical=True))
        cache.put_encoded("some-key", outcome["result"], outcome["arrays"])
        assert cache.get("some-key", None) is not None
        counters = metrics.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.puts"] == 1
        names = [s["name"] for s in load_trace_dir(traced)]
        assert names.count("cache.get") == 2 and names.count("cache.put") == 1


class TestTracedSweepReconciliation:
    def reconcile(self, traced, sites: int):
        spec = hubbard_sweep(sites)
        session = Session(cache=False, executor=ProcessExecutor(2))
        results = session.sweep(spec)
        assert results.ok and len(results) == 16

        spans = load_trace_dir(traced)
        assert validate_spans(spans) == len(spans)

        # Per-phase sums reconcile with the recorded wall time within 5%.
        points = [
            s for s in spans if s["name"] in ("execute.point", "execute.batch")
        ]
        span_wall = sum(s["wall"] for s in points)
        record_wall = sum(record.wall_time for record in results)
        assert span_wall == pytest.approx(record_wall, rel=0.05)
        for record in results:
            assert sum(record.timings.values()) <= record.wall_time * 1.05

        # Both pool workers traced, and their spans joined the session trace.
        roots = [s for s in spans if s["name"] == "session.execute"]
        assert len(roots) == 1
        assert all(s["trace_id"] == roots[0]["trace_id"] for s in points)
        worker_pids = {s["pid"] for s in points}
        assert len(worker_pids) == 2 and roots[0]["pid"] not in worker_pids

        report = render_report(spans)
        assert "evolve" in report and "execute.point" in report

    def test_two_worker_traced_sweep_reconciles(self, traced):
        self.reconcile(traced, sites=3)  # 6 qubits: the fast tier-1 shape

    @pytest.mark.slow
    def test_annex_c_traced_sweep_reconciles(self, traced):
        self.reconcile(traced, sites=5)  # the paper's 10-qubit Annex-C grid
