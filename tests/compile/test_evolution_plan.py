"""EvolutionPlan lowering: mask-plan evolution must match circuit evolution.

Property suite for the term-level engine: random SCB Hamiltonians are lowered
under both evolution strategies and every plan is replayed against the exact
same circuit the strategy builds — full complex vectors compared, so global
phases count, including the batch axis.  The refusal paths (non-evolution
strategies, non-commuting direct fragments) and the per-program cache are
covered as well.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.circuits.statevector import Statevector
from repro.compile.plan import (
    EvolutionPlan,
    PlanLoweringError,
    lower_problem,
)
from repro.operators.scb_term import SCBTerm
from repro.utils.linalg import random_statevector

ALPHABET = "IXYZnmsd"


def random_problem(seed: int, *, steps: int = 1, order: int = 1, time: float = 0.3):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    terms: dict[str, float] = {}
    for _ in range(int(rng.integers(1, 4))):
        while True:
            label = "".join(rng.choice(list(ALPHABET), size=n))
            if set(label) != {"I"} and label not in terms:
                break
        terms[label] = float(rng.uniform(0.2, 1.0) * rng.choice((-1, 1)))
    return repro.SimulationProblem.from_labels(
        n, terms, time=time, steps=steps, order=order
    )


def circuit_reference(program, psi: np.ndarray) -> np.ndarray:
    return Statevector(psi).evolve(program.circuit).data


class TestPlanMatchesCircuit:
    @given(
        seed=st.integers(0, 200),
        strategy=st.sampled_from(["direct", "pauli"]),
        steps=st.integers(1, 3),
        order=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_hamiltonians(self, seed, strategy, steps, order):
        problem = random_problem(seed, steps=steps, order=order)
        program = repro.compile(problem, strategy)
        plan = program.evolution_plan()
        assert plan is not None
        psi = random_statevector(problem.num_qubits, np.random.default_rng(seed))
        # Full vectors, not fidelities: the identity-string global phase must
        # match the circuit's global_phase too.
        np.testing.assert_allclose(
            plan.evolve(psi), circuit_reference(program, psi), atol=1e-10
        )

    @given(seed=st.integers(0, 100), strategy=st.sampled_from(["direct", "pauli"]))
    @settings(max_examples=20, deadline=None)
    def test_batch_axis(self, seed, strategy):
        problem = random_problem(seed, steps=2, order=2)
        program = repro.compile(problem, strategy)
        rng = np.random.default_rng(seed + 1)
        batch = np.column_stack(
            [random_statevector(problem.num_qubits, rng) for _ in range(3)]
        )
        evolved = program.evolution_plan().evolve(batch)
        for column in range(3):
            np.testing.assert_allclose(
                evolved[:, column],
                circuit_reference(program, batch[:, column]),
                atol=1e-10,
            )

    def test_global_phase_only_problem(self):
        # A purely diagonal Hamiltonian with an identity component: the plan's
        # accumulated step phase must reproduce the circuit's global phase.
        problem = repro.SimulationProblem.from_labels(
            2, {"nm": 0.7, "ZI": 0.4}, time=0.9, steps=3
        )
        program = repro.compile(problem, "pauli")
        psi = random_statevector(2, np.random.default_rng(0))
        np.testing.assert_allclose(
            program.evolution_plan().evolve(psi),
            circuit_reference(program, psi),
            atol=1e-12,
        )


class TestLoweringRefusals:
    def test_non_evolution_strategy_refuses(self):
        problem = random_problem(3)
        with pytest.raises(PlanLoweringError, match="does not lower"):
            lower_problem(problem, "block_encoding")

    def test_complex_transition_fragment_lowers_exactly(self):
        # A complex coefficient produces anticommuting strings — no product of
        # independent rotations exists — but the closed-form fragment
        # exponential still reproduces the exact circuit.
        ham = repro.Hamiltonian(3).add_term(SCBTerm.from_label("ssI", 0.5 + 0.5j))
        ham.add_term(SCBTerm.from_label("IZn", 0.3))
        program = repro.compile(repro.SimulationProblem(ham, 0.3, steps=2), "direct")
        psi = random_statevector(3, np.random.default_rng(1))
        np.testing.assert_allclose(
            program.evolution_plan().evolve(psi),
            circuit_reference(program, psi),
            atol=1e-10,
        )

    def test_trotter_split_complex_fragment_refuses(self):
        # Under complex_mode="trotter_split" the circuit deliberately carries
        # a splitting error; the exact plan would disagree, so lowering refuses.
        ham = repro.Hamiltonian(3).add_term(SCBTerm.from_label("ssI", 0.5 + 0.5j))
        problem = repro.SimulationProblem(ham, 0.3).with_options(
            complex_mode="trotter_split"
        )
        with pytest.raises(PlanLoweringError, match="trotter_split"):
            lower_problem(problem, "direct")

    def test_kernel_backend_falls_back_when_refused(self):
        ham = repro.Hamiltonian(3).add_term(SCBTerm.from_label("ssI", 0.5 + 0.5j))
        problem = repro.SimulationProblem(ham, 0.3).with_options(
            complex_mode="trotter_split"
        )
        program = repro.compile(problem, "direct")
        assert program.evolution_plan() is None
        kernel = program.run(backend="kernel")
        reference = program.run(backend="statevector")
        np.testing.assert_allclose(kernel.data, reference.data, atol=1e-12)

    @pytest.mark.parametrize("strategy", ["block_encoding", "mpf"])
    def test_kernel_backend_falls_back_for_wide_programs(self, strategy):
        problem = repro.SimulationProblem.from_labels(
            3, {"nsd": 0.4, "ZII": 0.3}, time=0.2
        )
        program = repro.compile(problem, strategy)
        assert program.evolution_plan() is None
        kernel = program.run(backend="kernel")
        reference = program.run(backend="statevector")
        np.testing.assert_allclose(kernel.data, reference.data, atol=1e-12)


class TestPlanObject:
    def test_plan_is_cached_on_the_program(self):
        program = repro.compile(random_problem(5), "direct")
        assert program.evolution_plan() is program.evolution_plan()

    def test_failed_lowering_is_cached_too(self):
        ham = repro.Hamiltonian(2).add_term(SCBTerm.from_label("ss", 1.0 + 1.0j))
        problem = repro.SimulationProblem(ham, 0.1).with_options(
            complex_mode="trotter_split"
        )
        program = repro.compile(problem, "direct")
        assert program.evolution_plan() is None
        assert program.evolution_plan() is None
        assert program._plan_unavailable

    def test_num_rotations_and_describe(self):
        problem = repro.SimulationProblem.from_labels(
            3, {"ZZI": 0.5, "IXX": 0.25}, time=0.4, steps=4, order=2
        )
        plan = repro.compile(problem, "pauli").evolution_plan()
        assert isinstance(plan, EvolutionPlan)
        # The order-2 turnaround coalesces the doubled middle fragment, so the
        # step schedule is s0(½) · s1(1) · s0(½): three rotations per step.
        assert plan.num_rotations == 3 * 4
        assert "pauli" in plan.describe()

    def test_dimension_mismatch_raises(self):
        plan = repro.compile(random_problem(7), "direct").evolution_plan()
        with pytest.raises(repro.CompileError, match="does not fit"):
            plan.evolve(np.ones(3, dtype=complex))

    def test_more_than_one_batch_axis_raises(self):
        # Extra trailing axes would broadcast the baked tables against batch
        # dimensions and silently corrupt amplitudes; the contract is
        # (dim,) or (dim, batch) only.
        problem = random_problem(7)
        plan = repro.compile(problem, "direct").evolution_plan()
        dim = 1 << problem.num_qubits
        with pytest.raises(repro.CompileError, match="batch"):
            plan.evolve(np.ones((dim, 2, 2), dtype=complex))

    def test_kernel_backend_rejects_unknown_kwargs(self):
        program = repro.compile(random_problem(7), "direct")
        with pytest.raises(repro.CompileError, match="unknown kernel-backend"):
            program.run(backend="kernel", shots=10)

    def test_factored_sign_path_matches_circuit(self, monkeypatch):
        # Force the Jordan–Wigner factoring (common-Z sign + residual table)
        # onto the wide groups by shrinking the dense-table cap below the
        # Z-chain width (but not below the two-transition residual).
        import repro.compile.plan as plan_module

        monkeypatch.setattr(plan_module, "_MAX_TABLE_BITS", 3)
        problem = repro.SimulationProblem.from_labels(
            5,
            {"dZZZs": 0.6, "ZZZZI": 0.4, "nIIIn": 0.3},
            time=0.3,
            steps=2,
            order=2,
        )
        for strategy in ("direct", "pauli"):
            program = repro.compile(problem, strategy)
            plan = program.evolution_plan()
            assert any(
                getattr(op, "sign_mask", 0) for op in plan._baked_ops()
            ), "expected at least one factored-sign op"
            psi = random_statevector(5, np.random.default_rng(3))
            np.testing.assert_allclose(
                plan.evolve(psi), circuit_reference(program, psi), atol=1e-10
            )
            batch = np.column_stack([psi, random_statevector(5, np.random.default_rng(4))])
            np.testing.assert_allclose(
                plan.evolve(batch)[:, 0], circuit_reference(program, psi), atol=1e-10
            )

    def test_kernel_backend_batched_initial_state(self):
        problem = random_problem(9, steps=2)
        program = repro.compile(problem, "direct")
        rng = np.random.default_rng(2)
        batch = np.column_stack(
            [random_statevector(problem.num_qubits, rng) for _ in range(2)]
        )
        out = program.run(backend="kernel", initial_state=batch)
        assert isinstance(out, np.ndarray) and out.shape == batch.shape
        np.testing.assert_allclose(
            out[:, 0], circuit_reference(program, batch[:, 0]), atol=1e-10
        )
