"""Integration tests reproducing the paper's worked examples end to end.

These tests tie several subsystems together: the Fig. 2 fifteen-qubit term,
the Eq. 12 block-encoding example, the Fig. 3 depth optimisation, the HUBO
phase separators inside QAOA, a small chemistry VQE and the Poisson pipeline.
They are the executable counterparts of the experiment index in DESIGN.md.
"""

import numpy as np
import pytest

from repro.analysis import compare_strategies
from repro.applications.chemistry import (
    diatomic_toy_hamiltonian,
    jordan_wigner_scb,
    vqe_optimize,
)
from repro.applications.hubo import phase_separator, random_hubo
from repro.applications.pde import (
    analytic_poisson_1d,
    line_grid,
    poisson_block_encoding,
    poisson_operator,
    solve_poisson,
)
from repro.circuits import Statevector, circuit_unitary
from repro.core import (
    EvolutionOptions,
    evolve_term,
    fragment_block_encoding,
    term_lcu_decomposition,
    term_unitary_count,
)
from repro.operators import Hamiltonian, SCBTerm, pauli_term_count
from repro.operators.hamiltonian import HermitianFragment
from repro.utils.linalg import phase_aligned_distance, random_statevector

#: The 15-qubit example of Fig. 2 / Eq. 12:
#: H = n m m X Y σ† n σ σ σ σ† Y Z σ† σ + h.c.
FIG2_LABEL = "nmmXYdnsssdYZds"


class TestFig2Example:
    def test_usual_strategy_needs_2048_pauli_strings(self):
        assert pauli_term_count(SCBTerm.from_label(FIG2_LABEL)) == 2048

    def test_direct_circuit_single_rotation_and_exact(self, rng):
        term = SCBTerm.from_label(FIG2_LABEL, 1.0)
        circuit = evolve_term(term, 0.31)
        assert circuit.num_rotation_gates() == 1
        ham = Hamiltonian(15, [term])
        psi = random_statevector(15, rng)
        out_circuit = Statevector(psi).evolve(circuit).data
        out_exact = ham.evolve_exact(psi, 0.31)
        assert np.max(np.abs(out_circuit - out_exact)) < 1e-10

    def test_pyramid_option_reduces_depth(self):
        term = SCBTerm.from_label(FIG2_LABEL, 1.0)
        linear = evolve_term(term, 0.3, options=EvolutionOptions())
        pyramid = evolve_term(
            term, 0.3, options=EvolutionOptions(basis_change="pyramid", parity_mode="pyramid")
        )
        assert pyramid.count_ops().get("cx", 0) == linear.count_ops().get("cx", 0)
        assert pyramid.depth() <= linear.depth()

    def test_eq12_block_encoding_six_unitaries(self):
        term = SCBTerm.from_label(FIG2_LABEL, 1.0)
        assert term_unitary_count(term) == 6
        # Verify the six-unitary LCU on a reduced version of the same structure
        # (the full 15-qubit dense check would be too large for a dense matrix).
        reduced = SCBTerm.from_label("nmXdsd", 1.0)
        fragment = HermitianFragment(reduced, True)
        decomposition = term_lcu_decomposition(fragment)
        assert decomposition.num_unitaries == 6
        assert decomposition.reconstruction_error(fragment.matrix()) < 1e-9
        be = fragment_block_encoding(fragment)
        assert be.verification_error(fragment.matrix()) < 1e-8


class TestStrategyComparisonOnMixedHamiltonian:
    def test_direct_strategy_reduces_rotations_and_is_exact_per_term(self):
        ham = Hamiltonian(5)
        ham.add_label("nsdII", 0.8)
        ham.add_label("IZZII", 0.3)
        ham.add_label("IIXsd", 0.5)
        ham.add_label("ndIIs", 0.25)
        comparison = compare_strategies(ham, 0.2)
        assert comparison.direct_logical_rotations == ham.num_terms
        assert comparison.pauli_logical_rotations > comparison.direct_logical_rotations


class TestHUBOEndToEnd:
    def test_phase_separator_equivalence_and_counts(self):
        problem = random_hubo(6, 8, 5, rng=21, formalism="boolean")
        direct = phase_separator(problem, 0.5, strategy="direct")
        usual = phase_separator(problem, 0.5, strategy="usual")
        assert phase_aligned_distance(circuit_unitary(direct), circuit_unitary(usual)) < 1e-8
        # Native formalism: one gate per monomial for the direct strategy.
        assert direct.size() <= problem.num_terms
        # Re-expanded formalism: the usual strategy needs up to 2^k gates per monomial.
        assert usual.num_rotation_gates() >= problem.num_terms


class TestChemistryEndToEnd:
    def test_vqe_on_toy_molecule_reaches_fci(self):
        ham = jordan_wigner_scb(diatomic_toy_hamiltonian(), 4)
        exact = ham.ground_state()[0][0]
        energy, _ = vqe_optimize(ham, 2, maxiter=80, rng=1)
        assert energy == pytest.approx(exact, abs=2e-3)


class TestPoissonEndToEnd:
    def test_pipeline_classical_and_quantum_objects_agree(self):
        num_nodes = 8
        source, expected = analytic_poisson_1d(num_nodes)
        grid = line_grid(num_nodes, spacing=1.0 / (num_nodes + 1))
        solution = solve_poisson(grid, source)
        np.testing.assert_allclose(solution.solution, expected, atol=1e-9)

        operator = poisson_operator(grid)
        from repro.applications.pde import laplacian_matrix

        np.testing.assert_allclose(
            np.real(operator.matrix()), laplacian_matrix(grid).toarray(), atol=1e-9
        )

        be = poisson_block_encoding(line_grid(4))
        assert be.verification_error(laplacian_matrix(line_grid(4)).toarray()) < 1e-8
