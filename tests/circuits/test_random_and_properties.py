"""Random-circuit generator tests and hypothesis properties of the circuit layer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits import (
    QuantumCircuit,
    Statevector,
    circuit_unitary,
    random_circuit,
    transpile,
)
from repro.exceptions import CircuitError
from repro.utils.linalg import is_unitary, random_statevector


class TestRandomCircuit:
    def test_reproducible(self):
        a = random_circuit(4, 20, rng=7)
        b = random_circuit(4, 20, rng=7)
        assert [i.name for i in a] == [i.name for i in b]

    def test_requires_positive_width(self):
        with pytest.raises(CircuitError):
            random_circuit(0, 5)

    def test_single_qubit_circuit(self):
        qc = random_circuit(1, 15, rng=3)
        assert qc.num_qubits == 1
        assert qc.size() == 15


class TestHypothesisProperties:
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=30),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_unitarity(self, num_qubits, depth, seed):
        qc = random_circuit(num_qubits, depth, rng=seed)
        assert is_unitary(circuit_unitary(qc))

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_inverse_property(self, num_qubits, depth, seed):
        qc = random_circuit(num_qubits, depth, rng=seed)
        product = qc.copy()
        product.compose(qc.inverse())
        np.testing.assert_allclose(
            circuit_unitary(product), np.eye(1 << num_qubits), atol=1e-8
        )

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_depth_bounds(self, num_qubits, depth, seed):
        qc = random_circuit(num_qubits, depth, rng=seed)
        assert 0 < qc.depth() <= qc.size()
        assert qc.two_qubit_depth() <= qc.depth()

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_norm_preservation(self, num_qubits, depth, seed):
        qc = random_circuit(num_qubits, depth, rng=seed)
        psi = Statevector(random_statevector(num_qubits, np.random.default_rng(seed)))
        assert psi.evolve(qc).norm() == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=2**31 - 1))
    def test_transpile_of_random_multi_controlled(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        qc = QuantumCircuit(num_qubits + 1)
        controls = list(range(num_qubits))
        ctrl_state = int(rng.integers(0, 1 << num_qubits))
        qc.mcrx(float(rng.uniform(-np.pi, np.pi)), controls, num_qubits, ctrl_state)
        out = transpile(qc)
        np.testing.assert_allclose(
            circuit_unitary(out), circuit_unitary(qc), atol=1e-8
        )
