"""Quantum-circuit substrate: gates, circuits, simulators and decompositions."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitLayers, circuit_dependency_graph, circuit_layers, critical_path_length
from repro.circuits.decompositions import (
    ccp_decomposition,
    ccx_decomposition,
    ccz_decomposition,
    controlled_unitary_abc,
    cx_ladder,
    cx_pyramid,
    euler_zyz,
    mc_rotation_decomposition,
    mcp_decomposition,
    mcx_decomposition,
    mcx_vchain,
    mcz_decomposition,
    undo_cx_pairs,
)
from repro.circuits.gate import (
    ControlledGate,
    Gate,
    Instruction,
    MatrixGate,
    StandardGate,
    UnitaryGate,
)
from repro.circuits.density_matrix import DensityMatrix, simulate_density
from repro.circuits.random_circuits import random_circuit
from repro.circuits.sparse import (
    apply_circuit_sparse,
    circuit_sparse_operators,
    gate_sparse_operator,
)
from repro.circuits.pauli_kernels import (
    apply_pauli_rotation,
    apply_pauli_string,
    apply_rotation_sequence,
    pauli_masks,
)
from repro.circuits.statevector import Statevector, apply_matrix, evolve_statevectors, simulate
from repro.circuits.transpile import (
    FusionReport,
    TranspileOptions,
    fuse_gates,
    fusion_report,
    transpile,
)
from repro.circuits.unitary import circuit_unitary, circuits_equivalent

__all__ = [
    "QuantumCircuit",
    "CircuitLayers",
    "circuit_dependency_graph",
    "circuit_layers",
    "critical_path_length",
    "ccp_decomposition",
    "ccx_decomposition",
    "ccz_decomposition",
    "controlled_unitary_abc",
    "cx_ladder",
    "cx_pyramid",
    "euler_zyz",
    "mc_rotation_decomposition",
    "mcp_decomposition",
    "mcx_decomposition",
    "mcx_vchain",
    "mcz_decomposition",
    "undo_cx_pairs",
    "ControlledGate",
    "Gate",
    "Instruction",
    "MatrixGate",
    "StandardGate",
    "UnitaryGate",
    "random_circuit",
    "apply_circuit_sparse",
    "circuit_sparse_operators",
    "gate_sparse_operator",
    "DensityMatrix",
    "simulate_density",
    "Statevector",
    "apply_matrix",
    "evolve_statevectors",
    "simulate",
    "apply_pauli_rotation",
    "apply_pauli_string",
    "apply_rotation_sequence",
    "pauli_masks",
    "FusionReport",
    "TranspileOptions",
    "fuse_gates",
    "fusion_report",
    "transpile",
    "circuit_unitary",
    "circuits_equivalent",
]
