"""Live fleet observability: series op, /metrics scrapes, top, connections."""

from __future__ import annotations

import json
import os
import urllib.request

import pytest

from repro.runtime import RunSpec, SweepSpec
from repro.service.cli import main
from repro.service.client import ServiceClient
from repro.service.protocol import (
    RemoteError,
    ServiceConnection,
    ServiceConnectionError,
)
from repro.telemetry.exporters import parse_prometheus

from _service_helpers import make_problem, wait_until


def run_sweep(daemon) -> dict:
    client = ServiceClient(daemon.socket_path)
    spec = SweepSpec(
        problem=make_problem(), strategies=("direct", "pauli"), steps=(1, 2),
        backend="resource",
    )
    ack = client.submit(spec)
    status = client.wait(ack["job_id"], timeout=60)
    assert status["state"] == "done"
    return ack


class TestSeriesOp:
    def test_series_reaches_the_client_with_derived_rates(self, make_daemon):
        daemon = make_daemon(local_workers=1, chunk_size=2,
                             sample_interval=0.05)
        run_sweep(daemon)
        client = ServiceClient(daemon.socket_path)
        wait_until(lambda: client.series()["samples"])
        doc = client.series()
        assert doc["interval"] == pytest.approx(0.05)
        assert doc["window"] == 600
        sample = doc["samples"][-1]
        for key in ("t", "counters", "gauges", "rates", "derived"):
            assert key in sample
        # The daemon's probe feeds the executed-point total into the series.
        assert sample["counters"]["service.points_executed"] == 4.0
        assert "points_per_second" in sample["derived"]
        # A fast sweep still registers as throughput somewhere in the window
        # (the baseline is seeded at daemon start, so the rate cannot vanish
        # into the first interval).
        wait_until(lambda: any(
            s["derived"]["points_per_second"] > 0
            for s in client.series()["samples"]
        ))

    def test_last_limits_the_reply(self, make_daemon):
        daemon = make_daemon(local_workers=0, sample_interval=0.02)
        wait_until(lambda: len(daemon.sampler) >= 3)
        assert len(ServiceClient(daemon.socket_path).series(last=2)["samples"]) == 2


class TestMetricsEndpoint:
    def test_scrape_parses_with_the_fleet_counters(self, make_daemon):
        daemon = make_daemon(local_workers=1, chunk_size=2,
                             sample_interval=0.05, metrics_port=0)
        port = daemon.metrics_server.port
        assert port  # ephemeral bind really happened
        run_sweep(daemon)
        wait_until(lambda: len(daemon.sampler) >= 1)

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            assert response.status == 200
            assert "version=0.0.4" in response.headers["Content-Type"]
            text = response.read().decode("utf-8")

        values = parse_prometheus(text)  # every line must obey the grammar
        # The acceptance counters: cache families exist from the first
        # scrape, and the daemon's probe state rides along as gauges.
        assert "repro_cache_hits_total" in values
        assert "repro_cache_misses_total" in values
        assert values["repro_service_points_executed"] == 4.0
        assert "repro_points_per_second" in values
        assert "repro_queue_points_pending" in values
        assert "repro_workers_total" in values

    def test_no_metrics_port_means_no_server(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        assert daemon.metrics_server is None


class TestTopCommand:
    def test_top_count_renders_the_dashboard(self, make_daemon, capsys):
        daemon = make_daemon(local_workers=1, chunk_size=2,
                             sample_interval=0.05)
        run_sweep(daemon)
        socket_args = ["--socket", str(daemon.socket_path)]
        assert main(["top", "--count", "2", "--interval", "0.05",
                     *socket_args]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top — daemon pid") == 2
        assert "throughput" in out and "points/s" in out
        assert "queue" in out and "workers" in out
        assert "resilience" in out
        # The finished sweep shows up in the job table with a full bar.
        assert "done" in out and "4/4" in out

    def test_top_json_emits_the_four_documents(self, make_daemon, capsys):
        daemon = make_daemon(local_workers=1, sample_interval=0.05)
        assert main(["top", "--count", "1", "--json",
                     "--socket", str(daemon.socket_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"stats", "series", "jobs", "workers"}
        assert payload["stats"]["pid"] == os.getpid()  # in-process daemon


class TestServiceConnection:
    def test_multiplexes_many_ops_on_one_socket(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        with ServiceConnection(daemon.socket_path) as conn:
            assert not conn.connected  # lazy: nothing until the first op
            pids = {conn.request("stats")["pid"] for _ in range(5)}
            assert pids == {os.getpid()}
            assert conn.connected
            assert conn.request("jobs")["ok"]
            assert conn.request("workers")["ok"]
        assert not conn.connected  # context exit closed it

    def test_remote_errors_keep_the_connection_alive(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        conn = ServiceConnection(daemon.socket_path)
        try:
            with pytest.raises(RemoteError):
                conn.request("no_such_op")
            assert conn.connected  # protocol-level error, not a socket death
            assert conn.request("stats")["pid"] == os.getpid()
        finally:
            conn.close()

    def test_close_then_request_reconnects(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        conn = ServiceConnection(daemon.socket_path)
        try:
            assert conn.request("stats")["ok"]
            conn.close()
            conn.close()  # idempotent
            assert not conn.connected
            assert conn.request("stats")["ok"]  # lazily reconnected
        finally:
            conn.close()

    def test_dead_socket_raises_connection_error(self, tmp_path):
        conn = ServiceConnection(tmp_path / "nobody-home.sock")
        with pytest.raises(ServiceConnectionError):
            conn.request("stats")
        assert not conn.connected
