"""The hung-point watchdog: kill the pool, re-queue, or record TimeoutError."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecError
from repro.runtime import ProcessExecutor
from repro.telemetry import metrics

from _chaos_helpers import (
    assert_outcomes_identical,
    clean_serial,
    shm_segments,
    sweep_payloads,
)


def test_hung_point_requeues_onto_a_fresh_pool(tmp_path, monkeypatch):
    payloads = sweep_payloads()
    expected = clean_serial(payloads)
    before = shm_segments()
    # One worker hangs (30 s sleep) exactly once across the whole pool; the
    # watchdog must kill that pool and finish everything on a fresh one.
    monkeypatch.setenv(
        "REPRO_FAULTS", f"state={tmp_path / 'state'};worker.execute:delay=30@once"
    )
    executor = ProcessExecutor(2, point_timeout=0.6, max_restarts=2)
    outcomes = executor.map_specs(payloads)
    assert_outcomes_identical(outcomes, expected)
    assert metrics.counter("resilience.retries") >= 1
    assert metrics.counter("resilience.timeouts") == 0
    assert shm_segments() <= before


def test_exhausted_restarts_record_timeout_outcomes(monkeypatch):
    payloads = sweep_payloads(strategies=("direct",), steps=(1, 2))
    monkeypatch.setenv("REPRO_FAULTS", "worker.execute:delay=30")
    executor = ProcessExecutor(2, point_timeout=0.3, max_restarts=0)
    outcomes = executor.map_specs(payloads)
    assert len(outcomes) == len(payloads)
    for outcome in outcomes:
        assert not outcome["ok"]
        assert outcome["error"]["type"] == "TimeoutError"
        assert "no progress" in outcome["error"]["message"]
    assert metrics.counter("resilience.timeouts") == len(payloads)


def test_watchdog_tracks_progress_not_total_time(monkeypatch):
    # A sweep whose points each take longer than point_timeout would take as
    # a whole must NOT trip the watchdog as long as points keep completing —
    # only silence counts.  Short grid, generous per-point window.
    payloads = sweep_payloads(strategies=("direct",), steps=(1, 2, 4, 8))
    expected = clean_serial(payloads)
    executor = ProcessExecutor(2, point_timeout=10.0, max_restarts=0)
    outcomes = executor.map_specs(payloads)
    assert_outcomes_identical(outcomes, expected)
    assert metrics.counter("resilience.timeouts") == 0
    assert metrics.counter("resilience.retries") == 0


def test_parameter_validation():
    with pytest.raises(SpecError):
        ProcessExecutor(2, point_timeout=0.0)
    with pytest.raises(SpecError):
        ProcessExecutor(2, max_restarts=-1)
