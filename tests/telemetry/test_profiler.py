"""Sampling profiler: arming, folded output, per-process lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro import telemetry
from repro.telemetry.profiler import (
    DEFAULT_HZ,
    SamplingProfiler,
    load_profile_dir,
    maybe_start_profiler,
    profile_rate,
    stop_profiler,
)


class TestArming:
    def test_unset_means_off(self):
        assert profile_rate() is None

    @pytest.mark.parametrize("value", ["1", "true", "ON", "yes"])
    def test_bare_truthy_uses_the_default_rate(self, monkeypatch, value):
        monkeypatch.setenv(telemetry.PROFILE_ENV, value)
        assert profile_rate() == DEFAULT_HZ

    def test_numeric_value_is_the_rate(self, monkeypatch):
        monkeypatch.setenv(telemetry.PROFILE_ENV, "250")
        assert profile_rate() == 250.0

    @pytest.mark.parametrize("value", ["", "0", "-5", "garbage", "false"])
    def test_everything_else_disarms(self, monkeypatch, value):
        monkeypatch.setenv(telemetry.PROFILE_ENV, value)
        assert profile_rate() is None

    def test_maybe_start_is_a_noop_when_disarmed(self):
        assert maybe_start_profiler() is None

    def test_maybe_start_is_idempotent_per_process(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.PROFILE_ENV, "50")
        monkeypatch.setenv(telemetry.PROFILE_DIR_ENV, str(tmp_path))
        first = maybe_start_profiler()
        try:
            assert first is not None
            assert maybe_start_profiler() is first
        finally:
            stop_profiler()
        assert stop_profiler() is None  # already stopped: a clean no-op


class TestSampling:
    def test_captures_a_busy_thread(self, tmp_path):
        release = threading.Event()

        def busy_loop_marker():
            while not release.is_set():
                sum(range(200))

        worker = threading.Thread(target=busy_loop_marker, daemon=True)
        worker.start()
        profiler = SamplingProfiler(400.0, directory=tmp_path)
        profiler.start()
        try:
            deadline = time.monotonic() + 10.0
            while profiler.samples < 20 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            path = profiler.stop()
            release.set()
            worker.join(timeout=5)
        assert profiler.samples >= 20
        lines = profiler.folded_lines()
        assert any("busy_loop_marker" in line for line in lines)
        assert path is not None and path.name.startswith("profile-")
        assert path.read_text().splitlines() == lines

    def test_folded_values_are_period_microseconds(self, tmp_path):
        profiler = SamplingProfiler(100.0, directory=tmp_path)
        profiler._folded = {"a;b;c": 3}
        (line,) = profiler.folded_lines()
        assert line == "a;b;c 30000"  # 3 samples x 10ms period, in us

    def test_flush_with_no_samples_writes_nothing(self, tmp_path):
        profiler = SamplingProfiler(100.0, directory=tmp_path)
        assert profiler.flush() is None
        assert list(tmp_path.iterdir()) == []

    def test_hz_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0)


class TestLoadProfileDir:
    def test_merges_and_sums_across_processes(self, tmp_path):
        (tmp_path / "profile-100-aa.folded").write_text(
            "mod.f;mod.g 1000\nmod.f 500\n"
        )
        (tmp_path / "profile-200-bb.folded").write_text(
            "mod.f;mod.g 250\n"
        )
        merged = load_profile_dir(tmp_path)
        assert "mod.f;mod.g 1250" in merged
        assert "mod.f 500" in merged

    def test_torn_tails_are_skipped(self, tmp_path):
        (tmp_path / "profile-100-aa.folded").write_text(
            "mod.f 1000\nmod.g"  # autosave torn before the value
        )
        assert load_profile_dir(tmp_path) == ["mod.f 1000"]

    def test_garbage_lines_are_skipped(self, tmp_path):
        (tmp_path / "profile-100-aa.folded").write_text(
            "mod.f 1000\nnot a folded line\nmod.g notanumber\n\n"
        )
        assert load_profile_dir(tmp_path) == ["mod.f 1000"]

    def test_empty_dir(self, tmp_path):
        assert load_profile_dir(tmp_path) == []
