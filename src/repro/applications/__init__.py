"""Application domains of the paper: HUBO, chemistry and finite differences."""

from repro.applications import chemistry, hubo, pde

__all__ = ["chemistry", "hubo", "pde"]
