"""Basis changes used by the direct Hamiltonian-simulation circuits.

Three building blocks (Section III and Annex A of the paper):

* :func:`transition_basis_change` — the generalized-Bell basis change that
  maps the two states ``|a⟩``/``|b⟩`` coupled by the transition operators to a
  pair of states that differ only on a single *pivot* qubit, with every other
  transition qubit reading ``|0⟩``.  Both the linear (CX chain from the pivot)
  and the pyramidal (two-by-two merging, Fig. 3) layouts are provided; they use
  the same number of CX gates but the pyramid has logarithmic depth.
* :func:`pauli_diagonalisation` — per-qubit ``{H, S, S†}`` rotations that map
  each Pauli factor to ``Z``.
* :func:`parity_accumulation` — CX ladder (linear or pyramidal, Fig. 25) that
  reports the parity of a set of qubits onto one of them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError


@dataclass(frozen=True)
class TransitionBasisChange:
    """Result of :func:`transition_basis_change`.

    Attributes
    ----------
    circuit:
        The basis-change circuit ``V`` (apply before the rotation, apply
        ``circuit.inverse()`` afterwards).
    pivot:
        The transition qubit left carrying the ``|a⟩`` vs ``|b⟩`` distinction.
    pivot_ket_bit:
        The bit value the pivot holds for the ket state ``|a⟩`` after ``V``.
    cleared_qubits:
        The other transition qubits; after ``V`` they read ``|0⟩`` for both
        coupled states.
    """

    circuit: QuantumCircuit
    pivot: int
    pivot_ket_bit: int
    cleared_qubits: tuple[int, ...]

    @property
    def cx_count(self) -> int:
        return self.circuit.count_ops().get("cx", 0)

    @property
    def depth(self) -> int:
        return self.circuit.depth()


def transition_basis_change(
    num_qubits: int,
    qubits: Sequence[int],
    ket_bits: Sequence[int],
    *,
    mode: str = "linear",
    pivot: int | None = None,
) -> TransitionBasisChange:
    """Basis change sending ``|a⟩, |b⟩`` to states differing only on a pivot.

    Parameters
    ----------
    num_qubits:
        Width of the circuit to create.
    qubits:
        The transition qubits (set S), in increasing order.
    ket_bits:
        The bit value of ``|a⟩`` on each of ``qubits`` (``|b⟩`` is its
        complement, Eq. 6).
    mode:
        ``"linear"`` (CX fan from the pivot, linear depth) or ``"pyramid"``
        (two-by-two merging, Fig. 3, logarithmic depth).  Both use
        ``len(qubits) - 1`` CX gates.
    pivot:
        Which transition qubit should carry the distinction; defaults to the
        last one for ``"linear"`` and is chosen by the tree for ``"pyramid"``.
    """
    qubits = list(qubits)
    ket_bits = list(ket_bits)
    if len(qubits) != len(ket_bits) or not qubits:
        raise CircuitError("qubits and ket_bits must be non-empty and of equal length")
    circuit = QuantumCircuit(num_qubits, "transition-basis")

    if mode == "linear":
        chosen = pivot if pivot is not None else qubits[-1]
        if chosen not in qubits:
            raise CircuitError(f"pivot {chosen} is not a transition qubit")
        pivot_bit = ket_bits[qubits.index(chosen)]
        cleared = []
        for q, bit in zip(qubits, ket_bits):
            if q == chosen:
                continue
            # After CX(pivot -> q), qubit q reads bit ⊕ pivot_bit for both
            # coupled states (their difference cancels); flip it to |0⟩.
            circuit.cx(chosen, q)
            if bit ^ pivot_bit:
                circuit.x(q)
            cleared.append(q)
        return TransitionBasisChange(circuit, chosen, pivot_bit, tuple(cleared))

    if mode == "pyramid":
        if pivot is not None and pivot not in qubits:
            raise CircuitError(f"pivot {pivot} is not a transition qubit")
        active: list[tuple[int, int]] = list(zip(qubits, ket_bits))
        if pivot is not None:
            # Keep the requested pivot at the end so it survives the merging.
            active.sort(key=lambda pair: pair[0] == pivot)
        cleared: list[int] = []
        while len(active) > 1:
            survivors: list[tuple[int, int]] = []
            i = 0
            while i + 1 < len(active):
                (q_src, bit_src), (q_keep, bit_keep) = active[i], active[i + 1]
                # CX(q_keep -> q_src): q_src now reads bit_src ⊕ bit_keep for
                # both coupled states; normalise it to |0⟩.
                circuit.cx(q_keep, q_src)
                if bit_src ^ bit_keep:
                    circuit.x(q_src)
                cleared.append(q_src)
                survivors.append((q_keep, bit_keep))
                i += 2
            if i < len(active):
                survivors.append(active[i])
            active = survivors
        chosen, pivot_bit = active[0]
        return TransitionBasisChange(circuit, chosen, pivot_bit, tuple(sorted(cleared)))

    raise CircuitError(f"unknown basis-change mode {mode!r}")


# ---------------------------------------------------------------------------
# Pauli diagonalisation and parity accumulation
# ---------------------------------------------------------------------------


def pauli_diagonalisation(
    num_qubits: int, qubits: Sequence[int], labels: Sequence[str]
) -> QuantumCircuit:
    """Per-qubit basis change ``B`` with ``B P B† = Z`` for each Pauli factor.

    ``X`` uses ``H``; ``Y`` uses ``H·S†`` (apply ``S†`` then ``H``); ``Z`` and
    ``I`` need nothing.  Apply the returned circuit before the interaction and
    its inverse afterwards.
    """
    circuit = QuantumCircuit(num_qubits, "pauli-diag")
    for q, label in zip(qubits, labels):
        if label == "X":
            circuit.h(q)
        elif label == "Y":
            circuit.sdg(q)
            circuit.h(q)
        elif label in ("Z", "I"):
            continue
        else:
            raise CircuitError(f"invalid Pauli label {label!r}")
    return circuit


def parity_accumulation(
    num_qubits: int, qubits: Sequence[int], target: int, *, mode: str = "linear"
) -> QuantumCircuit:
    """Accumulate the parity of ``qubits`` onto ``target`` (which keeps its own bit).

    ``mode="linear"`` chains CX gates onto the target (depth ``len(qubits)``);
    ``mode="pyramid"`` uses the tree layout of Fig. 25 (same CX count,
    logarithmic depth).
    """
    circuit = QuantumCircuit(num_qubits, "parity")
    sources = [q for q in qubits if q != target]
    if not sources:
        return circuit
    if mode == "linear":
        for q in sources:
            circuit.cx(q, target)
        return circuit
    if mode == "pyramid":
        active = sources + [target]
        while len(active) > 1:
            survivors: list[int] = []
            i = 0
            while i + 1 < len(active):
                control, tgt = active[i], active[i + 1]
                circuit.cx(control, tgt)
                survivors.append(tgt)
                i += 2
            if i < len(active):
                survivors.append(active[i])
            active = survivors
        if active[0] != target:
            raise CircuitError("pyramid parity did not terminate on the target qubit")
        return circuit
    raise CircuitError(f"unknown parity mode {mode!r}")
