"""Hamiltonians as sums of Single Component Basis terms (Eq. 4 / Eq. 5).

A :class:`Hamiltonian` stores a list of :class:`~repro.operators.scb_term.SCBTerm`
objects.  :meth:`Hamiltonian.hermitian_fragments` gathers each non-Hermitian
term with its Hermitian conjugate (Eq. 5) — the fragments are exactly the
operators the direct strategy exponentiates one by one, and the unit the
block-encoding of Section IV works with.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import OperatorError
from repro.operators.conversion import scb_term_to_pauli
from repro.operators.pauli import PauliOperator
from repro.operators.scb_term import SCBTerm


@dataclass(frozen=True)
class HermitianFragment:
    """A gathered Hermitian fragment ``γ·A + h.c.`` (or a Hermitian term itself).

    Attributes
    ----------
    term:
        The representative SCB term ``γ·A``.
    include_hc:
        Whether the Hermitian conjugate must be added to form the fragment.
        ``False`` for terms that are already Hermitian (no transition factor
        and a real coefficient), in which case the fragment is the term alone.
    """

    term: SCBTerm
    include_hc: bool

    @property
    def num_qubits(self) -> int:
        return self.term.num_qubits

    def matrix(self, sparse: bool = False):
        """Matrix of the fragment."""
        if self.include_hc:
            return self.term.hermitian_matrix(sparse=sparse)
        return self.term.matrix(sparse=sparse)

    def to_pauli(self) -> PauliOperator:
        """Pauli expansion of the fragment (for the usual-strategy baseline)."""
        pauli = scb_term_to_pauli(self.term)
        if self.include_hc:
            pauli = pauli + scb_term_to_pauli(self.term.dagger())
        return pauli.simplify()


class Hamiltonian:
    """A sum of SCB terms, the native problem description of the direct strategy."""

    def __init__(self, num_qubits: int, terms: Iterable[SCBTerm] = ()):
        if num_qubits < 0:
            raise OperatorError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self._terms: list[SCBTerm] = []
        self._evolve_matrix: sp.spmatrix | None = None
        # Mutation counter: bumped by every add_term so derived caches — the
        # CSC evolution matrix above and content_key() below — can never go
        # stale on an in-place edit.
        self._version = 0
        self._content_key: tuple[int, str] | None = None
        for term in terms:
            self.add_term(term)

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_labels(
        cls,
        num_qubits: int,
        terms: "Mapping[str, complex] | Iterable[tuple[str, complex]]",
        ) -> "Hamiltonian":
        """Build a whole Hamiltonian in one expression from label → coefficient.

        ``Hamiltonian.from_labels(4, {"nsdI": 0.8, "IZZI": 0.3})`` — each key
        is a character label (one factor per qubit, see
        :meth:`SCBTerm.from_label`).  An iterable of ``(label, coefficient)``
        pairs is accepted too, which allows repeated labels.
        """
        pairs = terms.items() if isinstance(terms, Mapping) else terms
        ham = cls(num_qubits)
        for label, coefficient in pairs:
            ham.add_term(SCBTerm.from_label(label, coefficient))
        return ham

    # ------------------------------------------------------------------ basics

    def add_term(self, term: SCBTerm) -> "Hamiltonian":
        if term.num_qubits != self.num_qubits:
            raise OperatorError(
                f"term acts on {term.num_qubits} qubits, Hamiltonian has {self.num_qubits}"
            )
        if abs(term.coefficient) > 1e-15:
            self._terms.append(term)
            self._evolve_matrix = None
            self._version += 1
        return self

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by :meth:`add_term`)."""
        return self._version

    def add_label(self, label: str, coefficient: complex = 1.0) -> "Hamiltonian":
        """Convenience: add a term from its character label."""
        return self.add_term(SCBTerm.from_label(label, coefficient))

    def add_sparse(self, ops: dict[int, str], coefficient: complex = 1.0) -> "Hamiltonian":
        """Convenience: add a term from a ``{qubit: operator-label}`` mapping."""
        return self.add_term(SCBTerm.from_sparse_label(ops, self.num_qubits, coefficient))

    @property
    def terms(self) -> tuple[SCBTerm, ...]:
        return tuple(self._terms)

    @property
    def num_terms(self) -> int:
        return len(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[SCBTerm]:
        return iter(self._terms)

    def __add__(self, other: "Hamiltonian") -> "Hamiltonian":
        if other.num_qubits != self.num_qubits:
            raise OperatorError("cannot add Hamiltonians on different numbers of qubits")
        return Hamiltonian(self.num_qubits, list(self._terms) + list(other._terms))

    def __mul__(self, scalar: complex) -> "Hamiltonian":
        return Hamiltonian(self.num_qubits, [t * scalar for t in self._terms])

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Hamiltonian({self.num_qubits} qubits, {self.num_terms} terms)"

    def copy(self) -> "Hamiltonian":
        return Hamiltonian(self.num_qubits, list(self._terms))

    # ----------------------------------------------------------- serialization

    def to_dict(self, *, canonical: bool = False) -> dict:
        """JSON-able form of the Hamiltonian.

        With ``canonical=True`` the terms are emitted in a deterministic
        sorted order (by label, then coefficient) — the form
        :meth:`content_key` hashes and the form the runtime layer executes,
        so that any two Hamiltonians with equal content keys produce
        bit-identical results.  The default preserves the as-written term
        order (term order matters to the Trotter product).
        """
        terms = self._terms
        if canonical:
            terms = sorted(terms, key=lambda t: t.sort_key())
        return {
            "num_qubits": self.num_qubits,
            "terms": [term.to_dict() for term in terms],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Hamiltonian":
        """Inverse of :meth:`to_dict` (term order preserved as serialized)."""
        return cls(
            payload["num_qubits"],
            (SCBTerm.from_dict(term) for term in payload["terms"]),
        )

    def canonical(self) -> "Hamiltonian":
        """Copy with terms in canonical sorted order (same content key)."""
        return Hamiltonian(
            self.num_qubits, sorted(self._terms, key=lambda t: t.sort_key())
        )

    def content_key(self) -> str:
        """Stable content hash of the canonical form.

        Invariant under term reordering, invalidated by :meth:`add_term`
        (the cached digest is keyed on the internal mutation counter, so an
        in-place edit can never serve a stale key).
        """
        from repro.utils.serialization import content_hash

        if self._content_key is None or self._content_key[0] != self._version:
            digest = content_hash(self.to_dict(canonical=True), tag="hamiltonian")
            self._content_key = (self._version, digest)
        return self._content_key[1]

    # ----------------------------------------------------------- fragmentation

    def hermitian_fragments(self, *, auto_hc: bool = True) -> list[HermitianFragment]:
        """Gather terms with their Hermitian conjugates (Eq. 5).

        With ``auto_hc`` (the default), a term containing transition operators
        or a complex coefficient is paired with its ``+ h.c.`` partner; terms
        that are already Hermitian become fragments on their own.  The list of
        fragments is what the direct strategy exponentiates term by term.
        """
        fragments = []
        for term in self._terms:
            include_hc = auto_hc and not term.is_hermitian
            fragments.append(HermitianFragment(term, include_hc))
        return fragments

    def is_hermitian_as_written(self) -> bool:
        """Whether the plain sum of terms (without adding h.c.) is Hermitian."""
        mat = self.matrix(sparse=True, include_hc=False)
        diff = mat - mat.conj().T
        return bool(abs(diff).max() < 1e-10) if diff.nnz else True

    # --------------------------------------------------------------- matrices

    def matrix(self, sparse: bool = False, include_hc: bool = True):
        """Matrix of the Hamiltonian.

        With ``include_hc`` (default) every non-Hermitian term is gathered with
        its Hermitian conjugate, matching :meth:`hermitian_fragments`; with
        ``include_hc=False`` the terms are summed exactly as written.
        """
        dim = 1 << self.num_qubits
        result = sp.csr_matrix((dim, dim), dtype=complex)
        for fragment in self.hermitian_fragments(auto_hc=include_hc):
            result = result + fragment.matrix(sparse=True)
        return result if sparse else np.asarray(result.todense())

    def to_pauli(self, include_hc: bool = True) -> PauliOperator:
        """Pauli-string expansion of the full Hamiltonian (the usual strategy)."""
        out = PauliOperator()
        for fragment in self.hermitian_fragments(auto_hc=include_hc):
            out = out + fragment.to_pauli()
        return out.simplify()

    # ------------------------------------------------------------------ physics

    def ground_state(self, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Lowest ``k`` eigenvalues and eigenvectors of the (Hermitian) matrix."""
        mat = self.matrix(sparse=True)
        dim = mat.shape[0]
        if dim <= 64 or k >= dim - 1:
            dense = np.asarray(mat.todense())
            vals, vecs = np.linalg.eigh(dense)
            return vals[:k], vecs[:, :k]
        vals, vecs = spla.eigsh(mat.asfptype(), k=k, which="SA")
        order = np.argsort(vals)
        return vals[order], vecs[:, order]

    def expectation_value(self, state: np.ndarray) -> float:
        """⟨ψ|H|ψ⟩ for a statevector ``ψ``."""
        state = np.asarray(state, dtype=complex).reshape(-1)
        mat = self.matrix(sparse=True)
        return float(np.real(np.vdot(state, mat @ state)))

    def evolve_exact(self, state: np.ndarray, time: float) -> np.ndarray:
        """Exact time evolution ``e^{-i t H} |ψ⟩`` via sparse ``expm_multiply``.

        This is the reference every circuit construction is verified against;
        it scales to registers far beyond the dense-unitary limit (e.g. the
        15-qubit example of Fig. 2).  ``state`` may also be a ``(2^n, batch)``
        array — every column is evolved by the same ``expm_multiply`` call.

        The CSC matrix is assembled once and cached (invalidated by
        :meth:`add_term`), so callers that evolve many states — e.g.
        :func:`~repro.analysis.trotter_error.trotter_error_state` — pay the
        kron-chain a single time.
        """
        state = np.asarray(state, dtype=complex)
        if state.ndim == 1:
            state = state.reshape(-1)
        elif state.ndim != 2:
            raise OperatorError(
                f"expected a vector or a (dim, batch) array, got shape {state.shape}"
            )
        if self._evolve_matrix is None:
            self._evolve_matrix = self.matrix(sparse=True).tocsc()
        return spla.expm_multiply(-1j * time * self._evolve_matrix, state)

    # -------------------------------------------------------------- statistics

    def term_order_histogram(self) -> dict[int, int]:
        """Number of terms per order (non-identity factor count)."""
        hist: dict[int, int] = {}
        for term in self._terms:
            hist[term.order] = hist.get(term.order, 0) + 1
        return hist

    def one_norm(self) -> float:
        """Sum of absolute term coefficients (h.c. partners counted once)."""
        return float(sum(abs(t.coefficient) for t in self._terms))


def hamiltonian_from_terms(terms: Sequence[SCBTerm]) -> Hamiltonian:
    """Build a Hamiltonian, inferring the register width from the terms."""
    if not terms:
        raise OperatorError("need at least one term")
    num_qubits = terms[0].num_qubits
    return Hamiltonian(num_qubits, terms)
