"""Fragment ordering and commutation grouping (Section VI-B).

The Trotter error of a product formula depends on how the non-commuting
fragments are ordered and grouped; the paper notes that ordering/partitioning
optimisations developed for the usual strategy apply equally to the direct
strategy.  This module provides the basic tools:

* :func:`fragments_commute` — exact commutation test of two gathered fragments;
* :func:`group_commuting_fragments` — greedy partition of a Hamiltonian's
  fragments into mutually commuting groups (fragments inside a group can be
  exponentiated in any order without error);
* :func:`ordered_trotter_circuit` — a Trotter step with an explicit fragment
  order, used to study the ordering dependence of the error.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.circuits.circuit import QuantumCircuit
from repro.core.direct_evolution import EvolutionOptions, evolve_fragment
from repro.exceptions import TrotterError
from repro.operators.hamiltonian import Hamiltonian, HermitianFragment


def fragments_commute(
    a: HermitianFragment, b: HermitianFragment, atol: float = 1e-10
) -> bool:
    """Whether two gathered fragments commute (exact sparse-matrix test)."""
    matrix_a = a.matrix(sparse=True)
    matrix_b = b.matrix(sparse=True)
    commutator = matrix_a @ matrix_b - matrix_b @ matrix_a
    if commutator.nnz == 0:
        return True
    return bool(abs(commutator).max() < atol)


def group_commuting_fragments(
    hamiltonian: Hamiltonian, *, atol: float = 1e-10
) -> list[list[HermitianFragment]]:
    """Greedy partition of the fragments into mutually commuting groups.

    Fragments are scanned in order; each one joins the first existing group it
    commutes with entirely, otherwise it opens a new group.  The number of
    groups upper-bounds the number of "effective" non-commuting layers of a
    Trotter step.
    """
    groups: list[list[HermitianFragment]] = []
    for fragment in hamiltonian.hermitian_fragments():
        placed = False
        for group in groups:
            if all(fragments_commute(fragment, member, atol) for member in group):
                group.append(fragment)
                placed = True
                break
        if not placed:
            groups.append([fragment])
    return groups


def commuting_group_count(hamiltonian: Hamiltonian) -> int:
    """Number of mutually commuting groups found by the greedy partition."""
    return len(group_commuting_fragments(hamiltonian))


def ordered_trotter_circuit(
    hamiltonian: Hamiltonian,
    time: float,
    order_indices: Sequence[int],
    *,
    steps: int = 1,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """First-order Trotter step exponentiating the fragments in a chosen order."""
    fragments = hamiltonian.hermitian_fragments()
    if sorted(order_indices) != list(range(len(fragments))):
        raise TrotterError("order_indices must be a permutation of the fragment indices")
    if steps < 1:
        raise TrotterError("steps must be >= 1")
    circuit = QuantumCircuit(hamiltonian.num_qubits, "ordered-trotter")
    dt = time / steps
    for _ in range(steps):
        for index in order_indices:
            circuit.compose(evolve_fragment(fragments[index], dt, options=options))
    return circuit


def grouped_trotter_circuit(
    hamiltonian: Hamiltonian,
    time: float,
    *,
    steps: int = 1,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """Trotter step that exponentiates commuting groups back-to-back.

    Within a group the ordering is irrelevant (no error); only the interfaces
    between groups contribute to the Trotter error, which often reduces it
    compared with an arbitrary interleaving.
    """
    groups = group_commuting_fragments(hamiltonian)
    circuit = QuantumCircuit(hamiltonian.num_qubits, "grouped-trotter")
    dt = time / steps
    for _ in range(steps):
        for group in groups:
            for fragment in group:
                circuit.compose(evolve_fragment(fragment, dt, options=options))
    return circuit


def ordering_error_spread(
    hamiltonian: Hamiltonian,
    time: float,
    *,
    num_orderings: int = 6,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """(min, max) single-step Trotter error over random fragment orderings.

    A quick way to quantify how much the ordering matters for a given
    Hamiltonian (Section VI-B's discussion).
    """
    from scipy.linalg import expm

    from repro.circuits.unitary import circuit_unitary
    from repro.utils.linalg import spectral_norm_diff

    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    exact = expm(-1j * time * hamiltonian.matrix())
    num_fragments = len(hamiltonian.hermitian_fragments())
    errors = []
    for _ in range(num_orderings):
        order = list(rng.permutation(num_fragments))
        circuit = ordered_trotter_circuit(hamiltonian, time, order)
        errors.append(spectral_norm_diff(circuit_unitary(circuit), exact))
    return min(errors), max(errors)
