"""Unit tests for the usual-strategy Pauli-string evolutions (Figs. 8-10)."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import circuit_unitary
from repro.core import (
    PauliEvolutionOptions,
    pauli_evolution_gate_counts,
    pauli_operator_rotation_count,
    pauli_string_evolution,
    pauli_trotter_step,
)
from repro.exceptions import OperatorError
from repro.operators import PauliOperator, PauliString
from repro.utils.linalg import spectral_norm_diff


class TestPauliStringEvolution:
    @pytest.mark.parametrize("label", ["Z", "ZZ", "ZZZ", "XYZZ", "XIZY", "YY"])
    def test_matches_exact_exponential(self, label):
        string = PauliString(label)
        circuit = pauli_string_evolution(string, 0.43, 0.71)
        exact = expm(-1j * 0.71 * 0.43 * string.matrix())
        assert spectral_norm_diff(circuit_unitary(circuit), exact) < 1e-9

    def test_identity_string_global_phase(self):
        circuit = pauli_string_evolution(PauliString("II"), 0.5, 0.3)
        np.testing.assert_allclose(
            circuit_unitary(circuit), np.exp(-1j * 0.15) * np.eye(4), atol=1e-12
        )

    def test_complex_coefficient_rejected(self):
        with pytest.raises(OperatorError):
            pauli_string_evolution(PauliString("Z"), 0.5j, 0.3)

    def test_embedding_in_wider_register(self):
        circuit = pauli_string_evolution(PauliString("ZZ"), 0.3, 0.2, num_qubits=4)
        assert circuit.num_qubits == 4

    def test_rzz_figure8_gate_counts(self):
        # Fig. 8: R_ZZ uses 2 CX and one RZ.
        circuit = pauli_string_evolution(PauliString("ZZ"), 1.0, 0.1)
        assert circuit.count_ops() == {"cx": 2, "rz": 1}

    def test_rzzz_figure9_gate_counts(self):
        circuit = pauli_string_evolution(PauliString("ZZZ"), 1.0, 0.1)
        assert circuit.count_ops() == {"cx": 4, "rz": 1}

    def test_rxyzz_figure10_structure(self):
        # Fig. 10: one H pair for X, one (S,H) pair for Y, 2(w-1) CX, one RZ.
        circuit = pauli_string_evolution(PauliString("XYZZ"), 1.0, 0.1)
        counts = circuit.count_ops()
        assert counts["rz"] == 1
        assert counts["cx"] == 6
        assert counts["h"] == 4

    def test_pyramid_parity_option(self):
        string = PauliString("ZZZZZ")
        linear = pauli_string_evolution(string, 0.4, 0.2)
        pyramid = pauli_string_evolution(
            string, 0.4, 0.2, options=PauliEvolutionOptions(parity_mode="pyramid")
        )
        assert spectral_norm_diff(circuit_unitary(linear), circuit_unitary(pyramid)) < 1e-9
        assert pyramid.depth() <= linear.depth()


class TestGateCountModels:
    def test_cx_count_formula(self):
        counts = pauli_evolution_gate_counts(PauliString("XZZY"))
        assert counts["cx"] == 2 * (4 - 1)
        assert counts["rz"] == 1

    def test_identity_string(self):
        counts = pauli_evolution_gate_counts(PauliString("II"))
        assert counts["cx"] == 0 and counts["rz"] == 0

    def test_operator_rotation_count(self):
        op = PauliOperator({"ZZ": 0.5, "XI": 0.3, "II": 1.0})
        assert pauli_operator_rotation_count(op) == 2


class TestPauliTrotterStep:
    def test_matches_exact_for_commuting_strings(self):
        op = PauliOperator({"ZZ": 0.4, "ZI": -0.2, "IZ": 0.7})
        circuit = pauli_trotter_step(op, 0.9)
        exact = expm(-1j * 0.9 * op.matrix())
        assert spectral_norm_diff(circuit_unitary(circuit), exact) < 1e-9

    def test_non_hermitian_rejected(self):
        with pytest.raises(OperatorError):
            pauli_trotter_step(PauliOperator({"Z": 1j}), 0.1)

    def test_step_error_decreases_with_time(self):
        op = PauliOperator({"XI": 0.8, "ZZ": 0.5})
        errors = []
        for t in (0.2, 0.1):
            circuit = pauli_trotter_step(op, t)
            exact = expm(-1j * t * op.matrix())
            errors.append(spectral_norm_diff(circuit_unitary(circuit), exact))
        assert errors[1] < errors[0]
