"""E8 — Section IV: block encoding of every term with at most six unitaries.

For terms covering every family combination, the LCU of Eqs. 10–12 is built
from the same gates as the Hamiltonian-simulation circuit, verified against
the exact fragment matrix, and assembled into a PREPARE–SELECT–PREPARE† block
encoding whose encoded block is checked too.  The unitary count never exceeds
six, as the paper states.
"""

from benchmarks.conftest import print_table
from repro.core import (
    fragment_block_encoding,
    hamiltonian_block_encoding,
    term_lcu_decomposition,
    term_unitary_count,
)
from repro.operators import Hamiltonian, SCBTerm
from repro.operators.hamiltonian import HermitianFragment

CASES = [
    ("XZ", 0.9),       # pure Pauli string: 1 unitary
    ("nn", 1.2),       # pure projector: 2 unitaries
    ("nXm", 0.4),      # projector ⊗ Pauli: 2 unitaries
    ("sd", 0.7),       # pure transition: 3 unitaries
    ("ZYsd", -0.6),    # transition ⊗ Pauli: 3 unitaries
    ("nsd", 0.8),      # transition ⊗ projector: 6 unitaries
    ("nmsdXY", 0.3),   # all families: 6 unitaries
    ("mdsnZ", 0.5),    # permuted layout: 6 unitaries
]


def _build_all():
    results = []
    for label, coeff in CASES:
        term = SCBTerm.from_label(label, coeff)
        fragment = HermitianFragment(term, include_hc=not term.is_hermitian)
        decomposition = term_lcu_decomposition(fragment)
        encoding = fragment_block_encoding(fragment)
        results.append((label, term, fragment, decomposition, encoding))
    return results


def test_six_unitary_term_block_encodings(benchmark):
    results = benchmark(_build_all)
    rows = []
    for label, term, fragment, decomposition, encoding in results:
        rows.append(
            [label,
             term_unitary_count(term),
             decomposition.num_unitaries,
             f"{decomposition.reconstruction_error(fragment.matrix()):.1e}",
             encoding.num_ancillas,
             f"{encoding.scale:.2f}",
             f"{encoding.verification_error(fragment.matrix()):.1e}"]
        )
    print_table(
        "Section IV — per-term LCU and block encoding",
        ["term", "predicted unitaries", "measured unitaries", "LCU error",
         "ancillas", "scale λ", "BE error"],
        rows,
    )
    for row in rows:
        assert row[1] == row[2] <= 6
        assert float(row[3]) < 1e-9
        assert float(row[6]) < 1e-8


def test_hamiltonian_block_encoding(benchmark):
    ham = Hamiltonian(4)
    ham.add_label("nsdI", 0.8)
    ham.add_label("IZZI", 0.3)
    ham.add_label("IXsd", 0.5)
    ham.add_label("mnsd", 0.2)

    encoding = benchmark(lambda: hamiltonian_block_encoding(ham))
    error = encoding.verification_error(ham.matrix())
    total_unitaries = sum(term_unitary_count(t) for t in ham.terms)
    print(f"\nWhole-Hamiltonian block encoding: {ham.num_terms} terms -> "
          f"≤ {total_unitaries} unitaries, {encoding.num_ancillas} ancillas, "
          f"scale λ = {encoding.scale:.3f}, encoded-block error = {error:.2e}")
    assert error < 1e-8
    assert total_unitaries <= 6 * ham.num_terms


def test_block_encoding_vs_pauli_lcu_unitary_count(benchmark):
    """The comparison behind Section IV: ≤6 unitaries/term vs 2^k Pauli unitaries/term."""
    from repro.core import pauli_lcu_decomposition
    from repro.operators import pauli_term_count

    def build():
        rows = []
        for label in ("nsd", "nmsdXY", "nmmsdsd"):
            term = SCBTerm.from_label(label, 0.5)
            fragment = HermitianFragment(term, True)
            direct = term_lcu_decomposition(fragment)
            pauli = pauli_lcu_decomposition(fragment.to_pauli())
            rows.append([label, direct.num_unitaries, pauli.num_unitaries, pauli_term_count(term)])
        return rows

    rows = benchmark(build)
    print_table(
        "LCU unitary count per term — direct (≤6) vs Pauli strings",
        ["term", "direct unitaries", "pauli unitaries (gathered)", "pauli strings (un-gathered)"],
        rows,
    )
    for _, direct_count, pauli_count, ungathered in rows:
        assert direct_count <= 6
        # The Pauli count grows exponentially with the term order while the
        # direct count is capped at six, so the direct decomposition wins as
        # soon as the term carries a few non-Pauli factors.
        if ungathered >= 16:
            assert direct_count <= pauli_count
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][1] <= 6
