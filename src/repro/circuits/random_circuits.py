"""Random circuit generation, used by property-based tests and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError

_ONE_QUBIT = ("x", "y", "z", "h", "s", "sdg", "t", "tdg")
_ONE_QUBIT_PARAM = ("rx", "ry", "rz", "p")
_TWO_QUBIT = ("cx", "cz", "swap")
_TWO_QUBIT_PARAM = ("cp", "crx", "cry", "crz", "rzz")
_THREE_QUBIT = ("ccx", "ccz", "cswap")
_THREE_QUBIT_PARAM = ("ccp",)


def random_circuit(
    num_qubits: int,
    depth: int,
    rng: np.random.Generator | int | None = None,
    *,
    two_qubit_prob: float = 0.5,
    multi_qubit_prob: float = 0.0,
) -> QuantumCircuit:
    """Generate a random circuit of roughly the requested depth.

    Each "layer" appends one random gate per qubit-pair slot; the result is a
    generic non-Clifford circuit suitable for exercising the simulator,
    transpiler and DAG utilities.  With ``multi_qubit_prob`` > 0 (and at least
    three qubits) three-qubit gates — ``ccx``/``ccz``/``cswap`` plus the
    parameterized ``ccp`` — are mixed in; the default of 0 draws nothing extra
    from ``rng``, so existing seeds keep producing the exact same circuits.
    """
    if num_qubits < 1:
        raise CircuitError("random_circuit needs at least one qubit")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    qc = QuantumCircuit(num_qubits, "random")
    for _ in range(depth):
        q = int(rng.integers(num_qubits))
        if (
            multi_qubit_prob > 0
            and num_qubits >= 3
            and rng.random() < multi_qubit_prob
        ):
            others = [int(x) for x in rng.choice(
                [x for x in range(num_qubits) if x != q], size=2, replace=False
            )]
            if rng.random() < 0.5:
                name = _THREE_QUBIT[int(rng.integers(len(_THREE_QUBIT)))]
                getattr(qc, name)(q, others[0], others[1])
            else:
                name = _THREE_QUBIT_PARAM[int(rng.integers(len(_THREE_QUBIT_PARAM)))]
                getattr(qc, name)(
                    float(rng.uniform(-np.pi, np.pi)), q, others[0], others[1]
                )
            continue
        use_two = num_qubits >= 2 and rng.random() < two_qubit_prob
        if use_two:
            q2 = int(rng.integers(num_qubits - 1))
            if q2 >= q:
                q2 += 1
            if rng.random() < 0.5:
                name = _TWO_QUBIT[int(rng.integers(len(_TWO_QUBIT)))]
                getattr(qc, name)(q, q2)
            else:
                name = _TWO_QUBIT_PARAM[int(rng.integers(len(_TWO_QUBIT_PARAM)))]
                getattr(qc, name)(float(rng.uniform(-np.pi, np.pi)), q, q2)
        else:
            if rng.random() < 0.5:
                name = _ONE_QUBIT[int(rng.integers(len(_ONE_QUBIT)))]
                getattr(qc, name)(q)
            else:
                name = _ONE_QUBIT_PARAM[int(rng.integers(len(_ONE_QUBIT_PARAM)))]
                getattr(qc, name)(float(rng.uniform(-np.pi, np.pi)), q)
    return qc
