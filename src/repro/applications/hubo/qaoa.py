"""QAOA driver built on the phase-separator circuits.

The Quantum Approximate Optimization Algorithm is one of the routines the
paper lists as a consumer of Hamiltonian simulation; this module provides a
small statevector-based driver so the examples and benchmarks can run the
direct and usual phase separators inside an actual optimisation loop and check
that both give identical energies (the cost operator is diagonal, so the two
strategies produce *exactly* the same state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.applications.hubo.circuits import qaoa_circuit
from repro.applications.hubo.problem import HUBOProblem
from repro.circuits.statevector import Statevector
from repro.exceptions import ProblemError


@dataclass
class QAOAResult:
    """Outcome of a QAOA optimisation run."""

    optimal_value: float
    optimal_parameters: np.ndarray
    expectation_history: list[float]
    best_bitstring: str
    best_cost: float
    num_layers: int
    strategy: str


def qaoa_expectation(
    problem: HUBOProblem,
    gammas: np.ndarray,
    betas: np.ndarray,
    *,
    strategy: str = "direct",
) -> float:
    """⟨ψ(γ, β)| H_P |ψ(γ, β)⟩ evaluated exactly on the statevector."""
    circuit = qaoa_circuit(problem, list(gammas), list(betas), strategy=strategy)
    state = Statevector.zero_state(problem.num_variables).evolve(circuit)
    energies = problem.energy_vector()
    return float(np.real(np.dot(state.probabilities(), energies)))


def run_qaoa(
    problem: HUBOProblem,
    num_layers: int = 1,
    *,
    strategy: str = "direct",
    rng: np.random.Generator | int | None = None,
    maxiter: int = 150,
) -> QAOAResult:
    """Optimise the QAOA parameters with COBYLA and report the best sample."""
    if problem.num_variables > 16:
        raise ProblemError("the statevector QAOA driver is limited to 16 variables")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    history: list[float] = []

    def objective(params: np.ndarray) -> float:
        gammas = params[:num_layers]
        betas = params[num_layers:]
        value = qaoa_expectation(problem, gammas, betas, strategy=strategy)
        history.append(value)
        return value

    x0 = rng.uniform(0.0, np.pi / 4.0, size=2 * num_layers)
    result = minimize(objective, x0, method="COBYLA", options={"maxiter": maxiter})

    gammas = result.x[:num_layers]
    betas = result.x[num_layers:]
    circuit = qaoa_circuit(problem, list(gammas), list(betas), strategy=strategy)
    state = Statevector.zero_state(problem.num_variables).evolve(circuit)
    probs = state.probabilities()
    energies = problem.energy_vector()
    best_index = int(np.argmin(np.where(probs > 1e-12, energies, np.inf)))
    # Most probable low-energy assignment: weight energies by sampling probability.
    sampled_best = int(np.argmax(probs * (energies <= energies[best_index] + 1e-9)))

    from repro.utils.bits import int_to_bitstring

    return QAOAResult(
        optimal_value=float(result.fun),
        optimal_parameters=result.x,
        expectation_history=history,
        best_bitstring=int_to_bitstring(sampled_best, problem.num_variables),
        best_cost=float(energies[sampled_best]),
        num_layers=num_layers,
        strategy=strategy,
    )


def approximation_ratio(problem: HUBOProblem, expectation: float) -> float:
    """(E_max - ⟨H⟩) / (E_max - E_min): 1 means the optimum is reached."""
    energies = problem.energy_vector()
    e_min, e_max = float(energies.min()), float(energies.max())
    if abs(e_max - e_min) < 1e-15:
        return 1.0
    return (e_max - expectation) / (e_max - e_min)
