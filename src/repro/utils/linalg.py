"""Dense linear-algebra helpers shared by the operator and circuit layers.

These are deliberately thin wrappers around NumPy/SciPy primitives; the heavy
lifting (statevector updates, sparse operator assembly) lives in
:mod:`repro.circuits` and :mod:`repro.operators`.  Keeping the predicates here
makes the numerical tolerances used across the library consistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ReproError

#: Default absolute tolerance used by the equality predicates below.
DEFAULT_ATOL = 1e-9


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose of a matrix."""
    return np.asarray(matrix).conj().T


def is_unitary(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Whether ``matrix`` is unitary within tolerance."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return np.allclose(matrix @ dagger(matrix), identity, atol=atol) and np.allclose(
        dagger(matrix) @ matrix, identity, atol=atol
    )


def is_hermitian(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Whether ``matrix`` equals its conjugate transpose within tolerance."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return np.allclose(matrix, dagger(matrix), atol=atol)


def is_identity(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Whether ``matrix`` is the identity within tolerance."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return np.allclose(matrix, np.eye(matrix.shape[0]), atol=atol)


def matrices_close(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """Element-wise closeness of two matrices (shape mismatch returns ``False``)."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    return np.allclose(a, b, atol=atol)


def operator_norm(matrix: np.ndarray) -> float:
    """Spectral (largest-singular-value) norm of a dense matrix."""
    return float(np.linalg.norm(np.asarray(matrix, dtype=complex), ord=2))


def spectral_norm_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Spectral norm of the difference of two matrices."""
    return operator_norm(np.asarray(a, dtype=complex) - np.asarray(b, dtype=complex))


def phase_aligned_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Spectral-norm distance between two unitaries modulo a global phase.

    The phase is chosen to maximise ``Re tr(a† b e^{-iφ})``, i.e. the optimal
    global-phase alignment, so that circuits that implement the same physical
    operation compare as equal.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    overlap = np.trace(dagger(a) @ b)
    if abs(overlap) < 1e-14:
        return spectral_norm_diff(a, b)
    phase = overlap / abs(overlap)
    return spectral_norm_diff(a * phase, b)


def hilbert_schmidt_inner(a: np.ndarray, b: np.ndarray) -> complex:
    """Hilbert–Schmidt inner product ``tr(a† b)``."""
    return complex(np.trace(dagger(np.asarray(a)) @ np.asarray(b)))


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right.

    The leftmost matrix acts on the most significant qubit, matching the
    bit-ordering convention of :mod:`repro.utils.bits`.
    """
    result: np.ndarray | None = None
    for matrix in matrices:
        matrix = np.asarray(matrix, dtype=complex)
        result = matrix if result is None else np.kron(result, matrix)
    if result is None:
        raise ReproError("kron_all requires at least one matrix")
    return result


def random_statevector(
    num_qubits: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Haar-ish random normalized statevector on ``num_qubits`` qubits."""
    if num_qubits < 0:
        raise ReproError("num_qubits must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    dim = 1 << num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def projector(states: Sequence[int], dim: int) -> np.ndarray:
    """Projector onto the given computational-basis states of dimension ``dim``."""
    proj = np.zeros((dim, dim), dtype=complex)
    for state in states:
        if not 0 <= state < dim:
            raise ReproError(f"state index {state} out of range for dimension {dim}")
        proj[state, state] = 1.0
    return proj
