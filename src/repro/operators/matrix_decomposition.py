"""Decomposition of arbitrary matrices into SCB terms and Pauli strings.

Two decompositions are provided:

* :func:`scb_decompose_matrix` — Section V-D of the paper: every non-zero
  matrix component ``w_{a,b}|bin[a]⟩⟨bin[b]|`` becomes a single SCB term built
  from Table II (``m``/``n`` where the two bit patterns agree, ``σ``/``σ†``
  where they differ).  The number of terms equals the number of stored
  components, which is what makes the direct formalism attractive for sparse
  matrices.
* :func:`pauli_decompose_matrix` — the usual LCU decomposition onto Pauli
  strings, ``β_i = tr[P_i H] / 2^N`` (Eq. 2), implemented with the recursive
  tensored-trace method so it stays practical up to ~10 qubits.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DecompositionError
from repro.operators.hamiltonian import Hamiltonian
from repro.operators.pauli import PauliOperator, PauliString
from repro.operators.scb_term import SCBTerm
from repro.operators.single_component import SCBOperator
from repro.utils.bits import int_to_bits
from repro.utils.validation import check_power_of_two, check_square

# ---------------------------------------------------------------------------
# Section V-D: single component transitions from Table II
# ---------------------------------------------------------------------------


def single_component_transition(
    ket: int, bra: int, num_qubits: int, coefficient: complex = 1.0
) -> SCBTerm:
    """The SCB term ``coefficient · |bin[ket]⟩⟨bin[bra]|`` (Table II).

    Qubits where both bit patterns are 0 get ``m``, where both are 1 get
    ``n``, where ket=1/bra=0 get ``σ`` and where ket=0/bra=1 get ``σ†``.
    """
    ket_bits = int_to_bits(ket, num_qubits)
    bra_bits = int_to_bits(bra, num_qubits)
    table = {
        (0, 0): SCBOperator.M,
        (1, 1): SCBOperator.N,
        (1, 0): SCBOperator.SIGMA,
        (0, 1): SCBOperator.SIGMA_DAG,
    }
    factors = tuple(table[(kb, bb)] for kb, bb in zip(ket_bits, bra_bits))
    return SCBTerm(complex(coefficient), factors)


def scb_decompose_matrix(
    matrix: np.ndarray | sp.spmatrix,
    *,
    hermitian: bool | None = None,
    atol: float = 1e-12,
) -> Hamiltonian:
    """Decompose a matrix into SCB terms, one per stored component.

    For a Hermitian matrix (detected automatically unless ``hermitian`` is
    forced), only the upper triangle is enumerated and each off-diagonal term
    is returned as a single representative ``w_{a,b}|a⟩⟨b|`` whose ``+ h.c.``
    partner is added implicitly by
    :meth:`repro.operators.hamiltonian.Hamiltonian.hermitian_fragments`.
    For a general matrix every non-zero component becomes its own term.
    """
    matrix = sp.csr_matrix(matrix, dtype=complex) if not sp.issparse(matrix) else matrix.tocsr()
    dim = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise DecompositionError(f"matrix must be square, got shape {matrix.shape}")
    num_qubits = check_power_of_two(dim, "matrix dimension")

    coo = matrix.tocoo()
    if hermitian is None:
        diff = matrix - matrix.conj().T
        hermitian = bool(abs(diff).max() < 1e-10) if diff.nnz else True

    ham = Hamiltonian(num_qubits)
    for row, col, value in zip(coo.row, coo.col, coo.data):
        if abs(value) <= atol:
            continue
        if hermitian and row > col:
            continue  # lower triangle carried by the h.c. of the upper term
        ham.add_term(single_component_transition(int(row), int(col), num_qubits, value))
    return ham


def scb_reconstruction_error(matrix: np.ndarray | sp.spmatrix, ham: Hamiltonian) -> float:
    """Max-norm error between a matrix and the reconstruction of its SCB terms."""
    target = sp.csr_matrix(matrix, dtype=complex)
    rebuilt = ham.matrix(sparse=True)
    diff = (target - rebuilt).tocoo()
    return float(max(abs(diff.data), default=0.0))


# ---------------------------------------------------------------------------
# Usual strategy: Pauli decomposition of a matrix
# ---------------------------------------------------------------------------

_PAULI_1Q = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_decompose_matrix(matrix: np.ndarray, atol: float = 1e-12) -> PauliOperator:
    """Exact Pauli-string decomposition of a dense matrix.

    Implemented with the recursive partial-trace ("tree") approach: the matrix
    is contracted one qubit at a time against the four single-qubit Paulis,
    which avoids materialising all ``4^N`` strings when the matrix is sparse
    in the Pauli basis — in the spirit of the tree-approach decomposition the
    paper cites for the usual strategy.
    """
    matrix = check_square(np.asarray(matrix, dtype=complex), "matrix")
    num_qubits = check_power_of_two(matrix.shape[0], "matrix dimension")

    terms: dict[str, complex] = {}

    def recurse(block: np.ndarray, label: str) -> None:
        if np.max(np.abs(block)) < atol:
            return
        if block.shape == (1, 1):
            coeff = complex(block[0, 0])
            if abs(coeff) > atol:
                terms[label] = terms.get(label, 0.0) + coeff
            return
        half = block.shape[0] // 2
        blocks = {
            "I": (block[:half, :half] + block[half:, half:]) / 2.0,
            "X": (block[:half, half:] + block[half:, :half]) / 2.0,
            "Y": (1j * block[:half, half:] - 1j * block[half:, :half]) / 2.0,
            "Z": (block[:half, :half] - block[half:, half:]) / 2.0,
        }
        for char, sub in blocks.items():
            recurse(sub, label + char)

    recurse(matrix, "")
    return PauliOperator({PauliString(label): coeff for label, coeff in terms.items()})


def pauli_reconstruction_error(matrix: np.ndarray, operator: PauliOperator) -> float:
    """Max-norm error between a matrix and its Pauli reconstruction."""
    rebuilt = operator.matrix(num_qubits=check_power_of_two(matrix.shape[0]))
    return float(np.max(np.abs(np.asarray(matrix) - rebuilt)))
