"""Unit tests for the SCB decompositions of finite-difference matrices (Section V-C.2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.applications.pde import (
    adjacency_1d,
    adjacency_terms_1d,
    decomposition_reconstruction_error,
    double_layer_grid,
    double_layer_hamiltonian,
    fd_measured_two_qubit_count,
    fd_term_count,
    fd_two_qubit_model,
    grid_laplacian_hamiltonian,
    laplacian_1d_hamiltonian,
    laplacian_matrix,
    line_grid,
    paper_double_layer_matrix,
    paper_two_line_matrix,
    two_line_grid,
    two_line_hamiltonian,
)
from repro.exceptions import ProblemError


class TestAdjacencyTerms:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_reconstructs_adjacency(self, q):
        terms = adjacency_terms_1d(q, q, 0, 1.0)
        ham_matrix = sum(
            t.hermitian_matrix() if not t.is_hermitian else t.matrix() for t in terms
        )
        np.testing.assert_allclose(
            np.real(ham_matrix), adjacency_1d(1 << q).toarray(), atol=1e-12
        )

    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_term_count_is_logarithmic(self, q):
        terms = adjacency_terms_1d(q, q, 0, 1.0)
        assert len(terms) == q

    def test_periodic_adds_wrap_term(self):
        terms = adjacency_terms_1d(3, 3, 0, 1.0, boundary="periodic")
        assert len(terms) == 4
        assert any(t.label == "sss" for t in terms)

    def test_neumann_adds_two_components(self):
        terms = adjacency_terms_1d(3, 3, 0, 1.0, boundary="neumann")
        assert len(terms) == 5

    def test_invalid_boundary(self):
        with pytest.raises(ProblemError):
            adjacency_terms_1d(3, 3, 0, 1.0, boundary="robin")

    def test_offset_embedding(self):
        terms = adjacency_terms_1d(2, 4, 1, 1.0)
        for term in terms:
            assert set(term.support) <= {1, 2}


class TestLaplacianDecompositions:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_1d_reconstruction(self, q):
        ham = laplacian_1d_hamiltonian(q, spacing=0.5)
        target = laplacian_matrix(line_grid(1 << q, spacing=0.5)).toarray()
        np.testing.assert_allclose(np.real(ham.matrix()), target, atol=1e-10)

    @pytest.mark.parametrize("boundary", ["dirichlet", "periodic", "neumann"])
    def test_boundaries_reconstruct(self, boundary):
        grid = line_grid(8)
        assert decomposition_reconstruction_error(grid, boundary=boundary) < 1e-10

    def test_2d_and_3d_reconstruction(self):
        assert decomposition_reconstruction_error(two_line_grid(8)) < 1e-10
        assert decomposition_reconstruction_error(double_layer_grid(4)) < 1e-10

    def test_general_grid_reconstruction(self):
        grid = line_grid(16)
        ham = grid_laplacian_hamiltonian(grid)
        np.testing.assert_allclose(
            np.real(ham.matrix()), laplacian_matrix(grid).toarray(), atol=1e-10
        )

    @given(st.integers(min_value=1, max_value=5))
    def test_term_count_formula(self, q):
        ham = laplacian_1d_hamiltonian(q)
        assert ham.num_terms == fd_term_count(q)
        assert ham.num_terms == q + 1  # identity + X + (q-1) carry terms

    def test_term_count_boundary_extras(self):
        assert fd_term_count(3, boundary="periodic") == fd_term_count(3) + 1
        assert fd_term_count(3, boundary="neumann") == fd_term_count(3) + 2


class TestPaperExplicitOperators:
    def test_two_line_hamiltonian_matches_matrix(self):
        ham = two_line_hamiltonian(4, -4.0, -3.0, 1.0, 2.0, 0.5)
        target = paper_two_line_matrix(4, -4.0, -3.0, 1.0, 2.0, 0.5)
        np.testing.assert_allclose(np.real(ham.matrix()), target, atol=1e-10)

    def test_two_line_term_count(self):
        ham = two_line_hamiltonian(4, -4.0, -4.0, 1.0, 1.0, 1.0)
        # 2 diagonal selectors + 2 * (q terms) + 1 coupling with q = 2.
        assert ham.num_terms == 2 + 2 * 2 + 1

    def test_double_layer_hamiltonian_matches_matrix(self):
        diag = (-6.0, -5.0, -4.0, -3.0)
        intra = (1.0, 2.0, 0.5, 1.5)
        ham = double_layer_hamiltonian(4, diag, intra, (1.0, 0.5), (2.0, 0.25))
        target = paper_double_layer_matrix(4, diag, intra, (1.0, 0.5), (2.0, 0.25))
        np.testing.assert_allclose(np.real(ham.matrix()), target, atol=1e-10)

    def test_zero_coefficients_drop_terms(self):
        ham = two_line_hamiltonian(4, -4.0, 0.0, 1.0, 0.0, 0.0)
        labels = [t.label for t in ham.terms]
        assert all(not label.startswith("n") or "s" not in label for label in labels)


class TestScaling:
    def test_eq23_model_is_quadratic_in_log(self):
        values = [fd_two_qubit_model(q) for q in range(1, 7)]
        assert values == [1, 3, 6, 10, 15, 21]

    def test_measured_two_qubit_count_grows_polynomially_in_log(self):
        counts = [fd_measured_two_qubit_count(q) for q in (2, 3, 4)]
        assert counts[0] < counts[1] < counts[2]
        # Far below the 2^q scaling a dense method would need.
        assert counts[2] < (1 << 4) ** 2
