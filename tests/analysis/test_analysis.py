"""Unit tests for the analysis helpers (gate counts, Trotter error, comparisons)."""

import numpy as np
import pytest

from repro.analysis import (
    StrategyComparison,
    compare_circuits,
    compare_strategies,
    gate_count_report,
    trotter_error_curve,
    trotter_error_norm,
    trotter_error_state,
)
from repro.analysis.gate_counts import format_comparison_table
from repro.circuits import QuantumCircuit
from repro.core import direct_hamiltonian_simulation
from repro.operators import Hamiltonian


@pytest.fixture
def hamiltonian() -> Hamiltonian:
    ham = Hamiltonian(3)
    ham.add_label("nsI", 0.8)
    ham.add_label("IZZ", 0.3)
    ham.add_label("Xsd", 0.5)
    return ham


class TestGateCountReports:
    def test_report_fields(self):
        qc = QuantumCircuit(3, "probe")
        qc.h(0)
        qc.cx(0, 1)
        qc.mcx([0, 1], 2)
        report = gate_count_report(qc)
        assert report.size == 3
        assert report.two_qubit_gates == 1
        assert report.multi_qubit_gates == 1
        assert report.num_qubits == 3

    def test_transpiled_report_removes_composites(self):
        qc = QuantumCircuit(3)
        qc.mcx([0, 1], 2)
        report = gate_count_report(qc, transpiled=True)
        assert report.multi_qubit_gates == 0
        assert report.two_qubit_gates > 0

    def test_compare_circuits_and_table(self):
        circuits = {"a": QuantumCircuit(2), "b": QuantumCircuit(2)}
        circuits["a"].cx(0, 1)
        circuits["b"].h(0)
        reports = compare_circuits(circuits)
        table = format_comparison_table(reports)
        assert "a" in table and "b" in table
        assert reports["a"].two_qubit_gates == 1

    def test_summary_string(self):
        report = gate_count_report(QuantumCircuit(1, "empty"))
        assert "empty" in report.summary()


class TestTrotterErrorMeasures:
    def test_norm_error_zero_for_exact_circuit(self, hamiltonian):
        # A fine second-order circuit should be very close to exact.
        circuit = direct_hamiltonian_simulation(hamiltonian, 0.2, steps=8, order=2)
        assert trotter_error_norm(hamiltonian, circuit, 0.2) < 1e-3

    def test_state_error_close_to_norm_error(self, hamiltonian):
        circuit = direct_hamiltonian_simulation(hamiltonian, 0.3, steps=1)
        norm_error = trotter_error_norm(hamiltonian, circuit, 0.3)
        state_error = trotter_error_state(hamiltonian, circuit, 0.3, rng=0)
        assert state_error <= norm_error + 1e-9

    def test_error_curve_decreasing(self, hamiltonian):
        curve = trotter_error_curve(
            hamiltonian,
            lambda steps: direct_hamiltonian_simulation(hamiltonian, 0.4, steps=steps),
            0.4,
            [1, 2, 4],
        )
        errors = [e for _, e in curve]
        assert errors[0] > errors[1] > errors[2]


class TestStrategyComparison:
    def test_comparison_fields(self, hamiltonian):
        comparison = compare_strategies(hamiltonian, 0.3)
        assert isinstance(comparison, StrategyComparison)
        assert comparison.direct_fragments == 3
        assert comparison.pauli_strings >= comparison.direct_fragments
        # The paper's rotation metric: one rotation per gathered term for the
        # direct strategy, one per Pauli string for the usual strategy.
        assert comparison.direct_logical_rotations == 3
        assert comparison.pauli_logical_rotations >= comparison.direct_logical_rotations

    def test_comparison_errors_finite(self, hamiltonian):
        comparison = compare_strategies(hamiltonian, 0.3)
        assert np.isfinite(comparison.direct_error)
        assert np.isfinite(comparison.pauli_error)

    def test_summary_contains_both_strategies(self, hamiltonian):
        comparison = compare_strategies(hamiltonian, 0.3, compute_error=False)
        text = comparison.summary()
        assert "direct strategy" in text and "usual" in text

    def test_skip_error_computation(self, hamiltonian):
        comparison = compare_strategies(hamiltonian, 0.3, compute_error=False)
        assert np.isnan(comparison.direct_error)
