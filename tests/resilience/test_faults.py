"""FaultPlan parsing, deterministic triggers, actions, and metrics."""

from __future__ import annotations

import errno
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import resilience
from repro.resilience import (
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    active_plan,
    configure_faults,
    fault_point,
    faults_enabled,
)
from repro.telemetry import metrics

from _chaos_helpers import REPO_ROOT


def fire_sequence(plan: FaultPlan, site: str, calls: int) -> "list[bool]":
    """Whether each of ``calls`` successive fires raised, as a bool list."""
    fired = []
    for _ in range(calls):
        try:
            plan.fire(site)
            fired.append(False)
        except Exception:  # noqa: BLE001 - any injected exception counts
            fired.append(True)
    return fired


class TestParsing:
    def test_describe_round_trips(self):
        text = (
            "seed=7;cache.put:raise=ENOSPC@n=2;"
            "worker.execute:delay=0.5@every=3,times=2"
        )
        plan = FaultPlan.parse(text)
        assert plan.seed == 7
        assert plan.describe() == text
        assert FaultPlan.parse(plan.describe()).describe() == text

    def test_state_dir_and_blank_entries(self, tmp_path):
        plan = FaultPlan.parse(f" ; state={tmp_path} ;; seed=2 ")
        assert plan.state_dir == tmp_path
        assert plan.seed == 2
        assert plan.rules == []

    @pytest.mark.parametrize(
        "text",
        [
            "seed=abc",
            "cache.put:explode",
            "cache.put:raise@q=2",
            "cache.put:raise=NoSuchError",
            "cache.put:raise@p=two",
            "cache.put:raise@n=two",
            "worker.execute:delay=abc",
            "not a rule at all",
        ],
    )
    def test_rejects_malformed_plans(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("cache.put:raise@p=1.5")


class TestTriggers:
    def test_nth_call_fires_exactly_once(self):
        plan = FaultPlan.parse("site:raise@n=3")
        assert fire_sequence(plan, "site", 6) == [False, False, True, False, False, False]

    def test_every_k_calls(self):
        plan = FaultPlan.parse("site:raise@every=2")
        assert fire_sequence(plan, "site", 6) == [False, True, False, True, False, True]

    def test_after_threshold(self):
        plan = FaultPlan.parse("site:raise@after=2")
        assert fire_sequence(plan, "site", 4) == [False, False, True, True]

    def test_times_caps_total_fires(self):
        plan = FaultPlan.parse("site:raise@times=2")
        assert fire_sequence(plan, "site", 5) == [True, True, False, False, False]

    def test_once_without_state_is_per_process_times_one(self):
        plan = FaultPlan.parse("site:raise@once")
        assert fire_sequence(plan, "site", 3) == [True, False, False]

    def test_probability_is_seed_deterministic(self):
        text = "seed=42;site:raise@p=0.5"
        first = fire_sequence(FaultPlan.parse(text), "site", 64)
        second = fire_sequence(FaultPlan.parse(text), "site", 64)
        assert first == second
        assert any(first) and not all(first)
        other_seed = fire_sequence(FaultPlan.parse("seed=43;site:raise@p=0.5"), "site", 64)
        assert other_seed != first

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.parse("site:raise")
        plan.fire("other.site")
        assert plan.fired() == {}

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.parse("site:raise=ENOSPC@n=1;site:raise=TimeoutError")
        with pytest.raises(OSError) as first:
            plan.fire("site")
        assert first.value.errno == errno.ENOSPC
        with pytest.raises(TimeoutError):
            plan.fire("site")

    def test_once_marker_is_fleet_wide(self, tmp_path):
        text = f"state={tmp_path};site:raise@once"
        first, second = FaultPlan.parse(text), FaultPlan.parse(text)
        assert fire_sequence(first, "site", 1) == [True]
        # A second plan (another process, in real chaos) finds the marker.
        assert fire_sequence(second, "site", 3) == [False, False, False]
        assert (tmp_path / "site.0.fired").exists()


class TestActions:
    def test_exception_mapping(self):
        cases = {
            "ENOSPC": OSError,
            "EACCES": OSError,
            "EIO": OSError,
            "ConnectionError": ConnectionError,
            "ConnectionResetError": ConnectionResetError,
            "BrokenPipeError": BrokenPipeError,
            "TimeoutError": TimeoutError,
            "FaultInjected": FaultInjected,
        }
        for name, exc_type in cases.items():
            plan = FaultPlan.parse(f"site:raise={name}")
            with pytest.raises(exc_type):
                plan.fire("site")
        with pytest.raises(OSError) as info:
            FaultPlan.parse("site:raise=EACCES").fire("site")
        assert info.value.errno == errno.EACCES

    def test_default_exception_is_fault_injected(self):
        with pytest.raises(FaultInjected):
            FaultPlan.parse("site:raise").fire("site")

    def test_delay_sleeps(self):
        plan = FaultPlan.parse("site:delay=0.05")
        start = time.perf_counter()
        plan.fire("site")
        assert time.perf_counter() - start >= 0.04

    def test_kill_terminates_the_process(self):
        env = dict(os.environ)
        env[FAULTS_ENV] = "worker.execute:kill"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.resilience import fault_point\n"
                "fault_point('worker.execute')\n"
                "print('survived')",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert result.returncode == -signal.SIGKILL
        assert "survived" not in result.stdout


class TestProcessHook:
    def test_disabled_hook_is_inert(self):
        assert not faults_enabled()
        fault_point("cache.put")  # must not raise, sleep, or install a plan
        assert active_plan() is None

    def test_env_plan_installs_lazily(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "site.x:raise@n=1")
        assert faults_enabled()
        assert active_plan() is None  # not parsed until the first hook
        with pytest.raises(FaultInjected):
            fault_point("site.x")
        assert active_plan() is not None
        fault_point("site.x")  # n=1 has passed; the plan stays quiet

    def test_unparsable_env_runs_clean(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "definitely//not::a plan")
        fault_point("site.x")  # logged, never raised
        assert active_plan() is None

    def test_configure_none_clears_env_installed_plan(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "site.y:raise")
        with pytest.raises(FaultInjected):
            fault_point("site.y")
        monkeypatch.delenv(FAULTS_ENV)
        configure_faults(None)
        fault_point("site.y")
        assert active_plan() is None

    def test_configure_accepts_plan_string_and_reset(self):
        configure_faults("site.z:raise=TimeoutError")
        assert faults_enabled()
        with pytest.raises(TimeoutError):
            fault_point("site.z")
        resilience.reset_process()
        assert active_plan() is None
        fault_point("site.z")

    def test_fires_are_counted(self):
        plan = configure_faults("a:raise;b:raise@n=2")
        for site in ("a", "b", "b"):
            try:
                fault_point(site)
            except FaultInjected:
                pass
        assert plan.fired() == {"a": 1, "b": 1}
        assert metrics.counter("resilience.faults_injected") == 2
        assert metrics.counter("resilience.faults.a") == 1
        assert metrics.counter("resilience.faults.b") == 1
