"""The :class:`QuantumCircuit` container.

The circuit is an ordered list of :class:`~repro.circuits.gate.Instruction`
objects on a fixed number of qubits.  It provides the convenience methods the
rest of the library relies on (gate appenders, composition, inversion,
controlled versions, depth and gate-count reports).  Simulation lives in
:mod:`repro.circuits.statevector` and :mod:`repro.circuits.unitary`;
decomposition of composite (multi-controlled) gates lives in
:mod:`repro.circuits.decompositions` and :mod:`repro.circuits.transpile`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.circuits.gate import ControlledGate, Gate, Instruction, StandardGate, UnitaryGate
from repro.exceptions import CircuitError
from repro.utils.validation import check_qubit_indices


class QuantumCircuit:
    """A fixed-width quantum circuit.

    Parameters
    ----------
    num_qubits:
        Number of qubits in the register.
    name:
        Optional human-readable name (used in reports).
    """

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 0:
            raise CircuitError(f"num_qubits must be non-negative, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []
        #: Global phase e^{i phase} applied on top of the instruction list.
        self.global_phase: float = 0.0

    # ------------------------------------------------------------------ basics

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def copy(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.name)
        out._instructions = list(self._instructions)
        out.global_phase = self.global_phase
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"size={len(self)}, depth={self.depth()})"
        )

    # ------------------------------------------------------------------ append

    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits`` (in gate order) and return self."""
        qubits = check_qubit_indices(qubits, self.num_qubits)
        self._instructions.append(Instruction(gate, tuple(qubits)))
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        for instr in instructions:
            self.append(instr.gate, instr.qubits)
        return self

    def compose(
        self, other: "QuantumCircuit", qubits: Sequence[int] | None = None
    ) -> "QuantumCircuit":
        """Append all instructions of ``other`` onto this circuit (in place).

        ``qubits`` maps the qubits of ``other`` onto qubits of this circuit;
        by default ``other`` must have the same width and is applied
        one-to-one.
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise CircuitError(
                    f"cannot compose a {other.num_qubits}-qubit circuit onto "
                    f"{self.num_qubits} qubits without a qubit map"
                )
            mapping = tuple(range(other.num_qubits))
        else:
            mapping = check_qubit_indices(qubits, self.num_qubits)
            if len(mapping) != other.num_qubits:
                raise CircuitError(
                    f"qubit map has {len(mapping)} entries for a "
                    f"{other.num_qubits}-qubit circuit"
                )
        for instr in other._instructions:
            self.append(instr.gate, tuple(mapping[q] for q in instr.qubits))
        self.global_phase += other.global_phase
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return a new circuit implementing the inverse unitary."""
        out = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        out.global_phase = -self.global_phase
        for instr in reversed(self._instructions):
            out.append(instr.gate.inverse(), instr.qubits)
        return out

    def power(self, repetitions: int) -> "QuantumCircuit":
        """Return the circuit repeated ``repetitions`` times."""
        if repetitions < 0:
            return self.inverse().power(-repetitions)
        out = QuantumCircuit(self.num_qubits, f"{self.name}^{repetitions}")
        for _ in range(repetitions):
            out.compose(self)
        return out

    def controlled(
        self, num_ctrl: int = 1, ctrl_state: int | str | None = None
    ) -> "QuantumCircuit":
        """Return a circuit where every instruction is controlled by new qubits.

        The control qubits are prepended as qubits ``0 .. num_ctrl-1`` and the
        original circuit is shifted up.  A non-zero global phase becomes a
        controlled phase gate so the construction stays exact.
        """
        out = QuantumCircuit(self.num_qubits + num_ctrl, f"c{num_ctrl}-{self.name}")
        controls = tuple(range(num_ctrl))
        for instr in self._instructions:
            gate = ControlledGate(instr.gate, num_ctrl, ctrl_state)
            out.append(gate, controls + tuple(q + num_ctrl for q in instr.qubits))
        if abs(self.global_phase) > 1e-15:
            phase_gate = ControlledGate(
                StandardGate("gphase", (self.global_phase,)), num_ctrl, ctrl_state
            )
            out.append(phase_gate, controls + (num_ctrl,))
        return out

    # ------------------------------------------------------------- convenience

    # single-qubit gates ---------------------------------------------------

    def id(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("id"), (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("x"), (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("y"), (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("z"), (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("h"), (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("s"), (qubit,))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("sdg"), (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("t"), (qubit,))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("tdg"), (qubit,))

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("sx"), (qubit,))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("rx", (theta,)), (qubit,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("ry", (theta,)), (qubit,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("rz", (theta,)), (qubit,))

    def p(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("p", (theta,)), (qubit,))

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("u", (theta, phi, lam)), (qubit,))

    def rxy(self, theta_x: float, theta_y: float, qubit: int) -> "QuantumCircuit":
        return self.append(StandardGate("rxy", (theta_x, theta_y)), (qubit,))

    # two-qubit gates -------------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("cx"), (control, target))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("cy"), (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("cz"), (control, target))

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("ch"), (control, target))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(StandardGate("swap"), (a, b))

    def fswap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(StandardGate("fswap"), (a, b))

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("cp", (theta,)), (control, target))

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("crx", (theta,)), (control, target))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("cry", (theta,)), (control, target))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("crz", (theta,)), (control, target))

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append(StandardGate("rxx", (theta,)), (a, b))

    def ryy(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append(StandardGate("ryy", (theta,)), (a, b))

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.append(StandardGate("rzz", (theta,)), (a, b))

    # three-qubit gates -----------------------------------------------------

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("ccx"), (c1, c2, target))

    def ccz(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("ccz"), (c1, c2, target))

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        return self.append(StandardGate("cswap"), (control, a, b))

    def ccp(self, theta: float, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append(StandardGate("ccp", (theta,)), (c1, c2, target))

    # multi-controlled composite gates ---------------------------------------

    def mcx(
        self,
        controls: Sequence[int],
        target: int,
        ctrl_state: int | str | None = None,
    ) -> "QuantumCircuit":
        """Multi-controlled X on ``ctrl_state`` (all-ones by default)."""
        gate = ControlledGate(StandardGate("x"), len(controls), ctrl_state, label="mcx")
        return self.append(gate, tuple(controls) + (target,))

    def mcz(
        self,
        controls: Sequence[int],
        target: int,
        ctrl_state: int | str | None = None,
    ) -> "QuantumCircuit":
        gate = ControlledGate(StandardGate("z"), len(controls), ctrl_state, label="mcz")
        return self.append(gate, tuple(controls) + (target,))

    def mcp(
        self,
        theta: float,
        controls: Sequence[int],
        target: int,
        ctrl_state: int | str | None = None,
    ) -> "QuantumCircuit":
        gate = ControlledGate(StandardGate("p", (theta,)), len(controls), ctrl_state, label="mcp")
        return self.append(gate, tuple(controls) + (target,))

    def mcrx(
        self,
        theta: float,
        controls: Sequence[int],
        target: int,
        ctrl_state: int | str | None = None,
    ) -> "QuantumCircuit":
        gate = ControlledGate(StandardGate("rx", (theta,)), len(controls), ctrl_state, label="mcrx")
        return self.append(gate, tuple(controls) + (target,))

    def mcry(
        self,
        theta: float,
        controls: Sequence[int],
        target: int,
        ctrl_state: int | str | None = None,
    ) -> "QuantumCircuit":
        gate = ControlledGate(StandardGate("ry", (theta,)), len(controls), ctrl_state, label="mcry")
        return self.append(gate, tuple(controls) + (target,))

    def mcrz(
        self,
        theta: float,
        controls: Sequence[int],
        target: int,
        ctrl_state: int | str | None = None,
    ) -> "QuantumCircuit":
        gate = ControlledGate(StandardGate("rz", (theta,)), len(controls), ctrl_state, label="mcrz")
        return self.append(gate, tuple(controls) + (target,))

    def mc_unitary(
        self,
        matrix: np.ndarray,
        controls: Sequence[int],
        targets: Sequence[int],
        ctrl_state: int | str | None = None,
        label: str = "mcu",
    ) -> "QuantumCircuit":
        gate = ControlledGate(UnitaryGate(matrix, label=label), len(controls), ctrl_state)
        return self.append(gate, tuple(controls) + tuple(targets))

    def unitary(
        self, matrix: np.ndarray, qubits: Sequence[int], label: str = "unitary"
    ) -> "QuantumCircuit":
        return self.append(UnitaryGate(matrix, label=label), tuple(qubits))

    # ------------------------------------------------------------------ queries

    def depth(self, *, min_qubits: int = 1) -> int:
        """Circuit depth counting gates acting on at least ``min_qubits`` qubits."""
        levels = [0] * max(self.num_qubits, 1)
        depth = 0
        for instr in self._instructions:
            if len(instr.qubits) < min_qubits:
                continue
            level = 1 + max((levels[q] for q in instr.qubits), default=0)
            for q in instr.qubits:
                levels[q] = level
            depth = max(depth, level)
        return depth

    def two_qubit_depth(self) -> int:
        """Depth counting only gates acting on two or more qubits."""
        return self.depth(min_qubits=2)

    def size(self) -> int:
        """Total number of instructions."""
        return len(self._instructions)

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        return dict(Counter(instr.name for instr in self._instructions))

    def num_two_qubit_gates(self) -> int:
        """Number of gates acting on exactly two qubits."""
        return sum(1 for instr in self._instructions if len(instr.qubits) == 2)

    def num_multi_qubit_gates(self) -> int:
        """Number of gates acting on three or more qubits."""
        return sum(1 for instr in self._instructions if len(instr.qubits) >= 3)

    def num_rotation_gates(self) -> int:
        """Number of gates carrying a continuous parameter (arbitrary rotations)."""
        return sum(1 for instr in self._instructions if instr.gate.is_rotation())

    def qubits_used(self) -> tuple[int, ...]:
        used: set[int] = set()
        for instr in self._instructions:
            used.update(instr.qubits)
        return tuple(sorted(used))

    # ------------------------------------------------------------------ output

    def draw(self, max_instructions: int = 80) -> str:
        """Crude text rendering: one line per instruction."""
        lines = [f"{self.name} ({self.num_qubits} qubits, depth {self.depth()})"]
        for i, instr in enumerate(self._instructions[:max_instructions]):
            params = getattr(instr.gate, "params", ())
            param_str = f"({', '.join(f'{p:.4g}' for p in params)})" if params else ""
            lines.append(f"  {i:3d}: {instr.name}{param_str} {list(instr.qubits)}")
        if len(self._instructions) > max_instructions:
            lines.append(f"  ... {len(self._instructions) - max_instructions} more")
        return "\n".join(lines)
