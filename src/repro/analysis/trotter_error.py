"""Trotter-error measurement against exact evolution.

Two error measures are provided: the spectral-norm error of the full unitary
(practical up to ~10 qubits) and a statevector error on random initial states
(practical far beyond, used for the 15-qubit Fig. 2 example and the chemistry
benchmarks).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import Statevector
from repro.circuits.unitary import circuit_unitary
from repro.operators.hamiltonian import Hamiltonian
from repro.utils.linalg import random_statevector, spectral_norm_diff


def trotter_error_norm(hamiltonian: Hamiltonian, circuit: QuantumCircuit, time: float) -> float:
    """Spectral-norm error ``‖U_circuit - e^{-i t H}‖`` (dense, small registers)."""
    exact = expm(-1j * time * hamiltonian.matrix())
    return spectral_norm_diff(circuit_unitary(circuit), exact)


def trotter_error_state(
    hamiltonian: Hamiltonian,
    circuit: QuantumCircuit,
    time: float,
    *,
    num_states: int = 3,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Maximum 2-norm error over random initial states (scales to large registers)."""
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    worst = 0.0
    for _ in range(num_states):
        psi = random_statevector(hamiltonian.num_qubits, rng)
        evolved_circuit = Statevector(psi).evolve(circuit).data
        evolved_exact = hamiltonian.evolve_exact(psi, time)
        worst = max(worst, float(np.linalg.norm(evolved_circuit - evolved_exact)))
    return worst


def trotter_error_curve(
    hamiltonian: Hamiltonian,
    circuit_builder,
    time: float,
    steps_list: list[int],
    *,
    use_norm: bool = True,
    rng: np.random.Generator | int | None = None,
) -> list[tuple[int, float]]:
    """Error as a function of the number of Trotter steps.

    ``circuit_builder(steps)`` must return the circuit approximating
    ``exp(-i·time·H)`` with that number of steps.
    """
    curve = []
    for steps in steps_list:
        circuit = circuit_builder(steps)
        if use_norm and hamiltonian.num_qubits <= 10:
            error = trotter_error_norm(hamiltonian, circuit, time)
        else:
            error = trotter_error_state(hamiltonian, circuit, time, rng=rng)
        curve.append((steps, error))
    return curve
