"""E6b — Section V-B.2: full-Hamiltonian Trotter error, fermionic vs Pauli partitioning.

For the Fermi–Hubbard chain and a synthetic molecular operator, one product-
formula step is built with (i) the direct/fermionic partition (one fragment per
gathered ladder term) and (ii) the Pauli partition (one fragment per string),
and the spectral-norm error against the exact evolution is measured for several
step counts and orders — the comparison the paper points to when citing the
fermionic-partitioning literature.
"""

from benchmarks.conftest import print_table
from repro.applications.chemistry import (
    compare_partitionings,
    fermi_hubbard_chain,
    jordan_wigner_scb,
    synthetic_molecular_hamiltonian,
)
from repro.applications.chemistry.trotter_study import compare_partitionings_scb


def test_hubbard_trotter_error_partitioning(benchmark):
    operator = fermi_hubbard_chain(2, tunneling=1.0, interaction=4.0)

    def sweep():
        rows = []
        for steps in (1, 2, 4):
            for order in (1, 2):
                comparison = compare_partitionings(operator, 0.5, steps=steps, order=order)
                rows.append(
                    [steps, order,
                     f"{comparison.direct_error:.3e}", f"{comparison.pauli_error:.3e}",
                     comparison.direct_rotations, comparison.pauli_rotations]
                )
        return rows

    rows = benchmark(sweep)
    print_table(
        "Fermi–Hubbard (2 sites) — Trotter error per partitioning",
        ["steps", "order", "direct/fermionic error", "pauli error",
         "direct rotations", "pauli rotations"],
        rows,
    )
    # Error decreases with steps for both partitionings; the direct partition
    # never needs more rotations than the Pauli partition.
    first_order = [row for row in rows if row[1] == 1]
    assert float(first_order[-1][2]) < float(first_order[0][2])
    assert float(first_order[-1][3]) < float(first_order[0][3])
    for row in rows:
        assert row[4] <= row[5]


def test_synthetic_molecule_trotter_error(benchmark):
    operator = synthetic_molecular_hamiltonian(4, rng=1, density=0.7)
    hamiltonian = jordan_wigner_scb(operator, 4)

    def sweep():
        rows = []
        for steps in (1, 2, 4):
            comparison = compare_partitionings_scb(hamiltonian, 0.4, steps=steps, order=1)
            rows.append(
                [steps,
                 f"{comparison.direct_error:.3e}", f"{comparison.pauli_error:.3e}",
                 comparison.direct_fragment_count, comparison.pauli_fragment_count]
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "Synthetic 4-spin-orbital molecule — Trotter error per partitioning",
        ["steps", "direct/fermionic error", "pauli error", "direct fragments", "pauli strings"],
        rows,
    )
    for row in rows:
        assert row[3] <= row[4]
    # O(dt^2/steps) scaling for the first-order formula.
    assert float(rows[-1][1]) < float(rows[0][1])
