"""Fault injection, retry/timeout policies, and graceful degradation.

The resilience layer has two halves that certify each other:

- :mod:`repro.resilience.faults` *produces* failures deterministically — a
  seeded :class:`FaultPlan` (from the ``REPRO_FAULTS`` environment variable
  or built in tests) fires raises/delays/SIGKILLs at named
  :func:`fault_point` sites across the cache, shm transport, executor, and
  service protocol.
- :mod:`repro.resilience.policy` *absorbs* them — :class:`RetryPolicy`
  (jittered exponential backoff over classified transients) and
  :class:`Deadline` budgets back the client reconnect loop, the worker
  claim loop, and the executor's hung-point watchdog.

Degraded operation is always visible: every injection, retry, fallback,
and timeout counts into the ``resilience.*`` telemetry metrics surfaced by
daemon ``stats`` and ``health``.
"""

from repro.resilience.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    active_plan,
    configure_faults,
    fault_point,
    faults_enabled,
    reset_process,
)
from repro.resilience.policy import Deadline, RetryPolicy

__all__ = [
    "FAULTS_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "Deadline",
    "RetryPolicy",
    "active_plan",
    "configure_faults",
    "fault_point",
    "faults_enabled",
    "reset_process",
]
