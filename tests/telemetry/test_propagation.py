"""Trace propagation: pool workers, service workers, fallbacks, crashes."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro import telemetry
from repro.runtime import ProcessExecutor, RunSpec, execute_spec_batch
from repro.telemetry.report import load_trace_dir

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def problem(**kwargs):
    kwargs.setdefault("time", 0.3)
    return repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3}, **kwargs
    )


def payloads_for(count: int, **kwargs) -> "list[dict]":
    return [
        RunSpec(problem=problem(steps=k + 1), **kwargs).to_dict(canonical=True)
        for k in range(count)
    ]


class TestPoolPropagation:
    def test_pool_worker_spans_join_the_parent_trace(self, traced):
        ProcessExecutor(2, chunk_size=1).map_specs(payloads_for(4))
        spans = load_trace_dir(traced)
        (root,) = [s for s in spans if s["name"] == "pool.map_specs"]
        points = [s for s in spans if s["name"] == "execute.point"]
        assert len(points) == 4
        assert all(p["trace_id"] == root["trace_id"] for p in points)
        assert all(p["parent_id"] == root["span_id"] for p in points)
        worker_pids = {p["pid"] for p in points}
        assert root["pid"] not in worker_pids  # work really ran out-of-process

    def test_untraced_pool_run_stays_silent(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.TRACE_DIR_ENV, str(tmp_path))
        outcomes = ProcessExecutor(2, chunk_size=1).map_specs(payloads_for(2))
        assert all(o["ok"] for o in outcomes)
        assert list(tmp_path.glob("trace-*.jsonl")) == []


class TestServicePropagation:
    @pytest.fixture
    def service_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "service"))
        return tmp_path

    def submit_and_wait(self, client, spec):
        ack = client.submit(spec)
        return ack, client.wait(ack["job_id"], timeout=60)

    def test_local_worker_adopts_the_client_trace(self, traced, service_env):
        from repro.service.client import ServiceClient
        from repro.service.daemon import Daemon

        daemon = Daemon(local_workers=1)
        daemon.start()
        try:
            client = ServiceClient(daemon.socket_path)
            spec = RunSpec(problem=problem(), backend="resource")
            with telemetry.span("session.execute") as root:
                _, status = self.submit_and_wait(client, spec)
                root_trace = telemetry.current_trace_context()["trace_id"]
            assert status["state"] == "done"

            stats = daemon.handle({"op": "stats"})
            assert "evolve" in stats["phases"]
            assert "counters" in stats["metrics"]
        finally:
            daemon.shutdown()
        chunks = [
            s for s in load_trace_dir(traced) if s["name"] == "service.chunk"
        ]
        assert chunks and all(c["trace_id"] == root_trace for c in chunks)
        assert all(c["parent_id"] is not None for c in chunks)

    def test_external_worker_adopts_the_client_trace(self, traced, service_env):
        from repro.service.client import ServiceClient
        from repro.service.daemon import Daemon
        from repro.service.worker import run_worker

        daemon = Daemon(local_workers=0, chunk_size=4)
        daemon.start()
        try:
            client = ServiceClient(daemon.socket_path)
            spec = RunSpec(problem=problem(), backend="resource")
            with telemetry.span("session.execute"):
                ack = client.submit(spec)
                shipped = telemetry.current_trace_context()
            assert run_worker(
                daemon.socket_path, worker_id="traced-worker",
                poll_interval=0.02, max_chunks=1,
            ) == 0
            status = client.wait(ack["job_id"], timeout=60)
            assert status["state"] == "done"

            # The daemon's service-path outcomes carry the phase timings.
            (outcome,) = client.result(ack["job_id"])
            assert outcome["ok"] and "evolve" in outcome["timings"]
        finally:
            daemon.shutdown()
        chunks = [
            s for s in load_trace_dir(traced) if s["name"] == "service.chunk"
        ]
        assert chunks
        assert all(c["trace_id"] == shipped["trace_id"] for c in chunks)
        assert all(c["parent_id"] == shipped["span_id"] for c in chunks)


class TestFusedBatchFallback:
    def test_failed_fusion_traces_the_error_and_per_point_retries(
        self, traced, monkeypatch
    ):
        from repro.runtime import executor as executor_module

        def exploding(*args, **kwargs):
            raise RuntimeError("fused path down for maintenance")

        monkeypatch.setattr(executor_module, "_batched_sampling", exploding)
        payloads = [
            RunSpec(
                problem=problem(), backend="sampling",
                run_kwargs={"shots": 64, "rng": index},
            ).to_dict(canonical=True)
            for index in range(3)
        ]
        outcomes = execute_spec_batch(payloads)
        assert all(o["ok"] for o in outcomes)
        assert all("batched" not in o for o in outcomes)  # per-point fallback

        spans = load_trace_dir(traced)
        (batch,) = [s for s in spans if s["name"] == "execute.batch"]
        assert batch["error"] is True
        points = [s for s in spans if s["name"] == "execute.point"]
        assert len(points) == 3 and all("error" not in p for p in points)


class TestCrashTolerance:
    def test_sigkilled_worker_leaves_a_parseable_trace(self, traced, tmp_path):
        script = textwrap.dedent(
            """
            import os, signal
            from repro.telemetry import span
            for index in range(5):
                with span("execute.point", index=index):
                    pass
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        process = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=60
        )
        assert process.returncode == -signal.SIGKILL

        spans = load_trace_dir(traced)
        assert len(spans) == 5  # every completed span survived the kill

        # And a genuinely torn final write (kill mid-`write(2)`) still parses.
        (trace_file,) = traced.glob("trace-*.jsonl")
        with open(trace_file, "ab") as handle:
            handle.write(b'{"trace_id": "x", "span_id": "y", "na')
        assert len(load_trace_dir(traced)) == 5
