"""Cross-backend differential harness.

Every execution path must tell the same story: the dense ``statevector``
backend, the CSR ``sparse`` backend, the matrix-free ``kernel`` backend and
the gate-fused variants are run against each other — and, for evolution
programs, against the ``exact`` ``expm_multiply`` oracle — on random
3–6-qubit SCB Hamiltonians across all registered strategies.  Fidelity must exceed ``1 - 1e-10`` wherever the
comparison is exact (same circuit, or commuting fragments), and converge at
the Trotter rate where it is not.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.compile.pipeline import run_many
from repro.exceptions import CompileError
from repro.utils.linalg import random_statevector

#: Tolerance for comparisons that are exact up to floating-point roundoff.
EXACT_FIDELITY = 1 - 1e-10

#: The full SCB alphabet and its diagonal (mutually commuting) subset.
FULL_ALPHABET = "IXYZnmsd"
DIAGONAL_ALPHABET = "InmZ"

STRATEGIES = ("direct", "pauli", "block_encoding", "mpf")
EVOLUTION_STRATEGIES = ("direct", "pauli")


def random_problem(
    seed: int,
    *,
    num_qubits: int | None = None,
    num_terms: int | None = None,
    alphabet: str = FULL_ALPHABET,
    time: float = 0.3,
    **kwargs,
) -> repro.SimulationProblem:
    """A random SCB Hamiltonian problem with at least one non-identity factor
    per term and real coefficients (so the Hamiltonian stays Hermitian after
    the automatic h.c. gathering)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 7)) if num_qubits is None else num_qubits
    terms: dict[str, float] = {}
    for _ in range(int(rng.integers(2, 5)) if num_terms is None else num_terms):
        while True:
            label = "".join(rng.choice(list(alphabet), size=n))
            if set(label) != {"I"} and label not in terms:
                break
        terms[label] = float(rng.uniform(0.2, 1.0) * rng.choice((-1, 1)))
    return repro.SimulationProblem.from_labels(n, terms, time=time, **kwargs)


def fidelity(a, b) -> float:
    return abs(np.vdot(a.data, b.data)) ** 2


class TestBackendsAgreeOnTheSameCircuit:
    """statevector / sparse / fused-vs-unfused all execute the same unitary."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("seed", range(4))
    def test_all_strategies_all_backends(self, strategy, seed):
        # Ancilla-carrying strategies build much wider circuits; keep the
        # system register small enough that the harness stays quick.
        small = strategy in ("block_encoding", "mpf")
        problem = random_problem(
            seed,
            num_qubits=3 if small else None,
            num_terms=2 if small else None,
        )
        plain = repro.compile(problem, strategy)
        fused = repro.compile(problem, strategy, optimize_level=1)
        reference = plain.run(backend="statevector")
        for program, backend in (
            (fused, "statevector"),
            (plain, "sparse"),
            (fused, "sparse"),
            (plain, "kernel"),
        ):
            result = program.run(backend=backend)
            label = f"{strategy}/{backend}/fused={program is fused}"
            assert fidelity(reference, result) > EXACT_FIDELITY, label

    @pytest.mark.parametrize("strategy", EVOLUTION_STRATEGIES)
    def test_random_initial_states(self, strategy):
        problem = random_problem(11, num_qubits=4)
        plain = repro.compile(problem, strategy, steps=2)
        fused = repro.compile(problem, strategy, steps=2, optimize_level=1)
        psi = random_statevector(4, np.random.default_rng(99))
        reference = plain.run(backend="statevector", initial_state=psi)
        assert fidelity(reference, fused.run(backend="statevector", initial_state=psi)) > EXACT_FIDELITY
        assert fidelity(reference, plain.run(backend="sparse", initial_state=psi)) > EXACT_FIDELITY
        assert fidelity(reference, fused.run(backend="sparse", initial_state=psi)) > EXACT_FIDELITY
        assert fidelity(reference, plain.run(backend="kernel", initial_state=psi)) > EXACT_FIDELITY

    @pytest.mark.parametrize("strategy", EVOLUTION_STRATEGIES)
    @pytest.mark.parametrize("seed", range(4))
    def test_kernel_plan_matches_statevector_exactly(self, strategy, seed):
        # Stricter than fidelity: the mask plan must reproduce the circuit's
        # full complex vector (global phase included) to 1e-10.
        problem = random_problem(seed + 30)
        program = repro.compile(problem, strategy, steps=2, order=2)
        psi = random_statevector(problem.num_qubits, np.random.default_rng(seed))
        reference = program.run(backend="statevector", initial_state=psi)
        kernel = program.run(backend="kernel", initial_state=psi)
        assert program.evolution_plan() is not None
        np.testing.assert_allclose(kernel.data, reference.data, atol=1e-10)


class TestDensityMatrixAgreesWithStatevector:
    """Ideal (noise-free) density-matrix evolution is |ψ⟩⟨ψ| of the pure run."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_all_strategies_ideal_density_matrix(self, strategy, seed):
        small = strategy in ("block_encoding", "mpf")
        problem = random_problem(
            seed + 40,
            num_qubits=3 if small else 4,
            num_terms=2 if small else None,
        )
        program = repro.compile(problem, strategy)
        psi = program.run(backend="statevector")
        rho = program.run(backend="density_matrix")
        label = f"{strategy}/density_matrix"
        assert rho.fidelity(psi) > EXACT_FIDELITY, label
        np.testing.assert_allclose(
            rho.data, np.outer(psi.data, psi.data.conj()), atol=1e-10
        )

    def test_explicit_ideal_noise_model_matches_too(self):
        from repro.noise import NoiseModel

        problem = random_problem(9, num_qubits=4)
        program = repro.compile(problem, "direct", noise_model=NoiseModel.ideal())
        psi = program.run(backend="statevector")
        rho = program.run(backend="density_matrix")
        assert rho.fidelity(psi) > EXACT_FIDELITY

    def test_fused_and_unfused_density_runs_agree(self):
        problem = random_problem(12, num_qubits=4)
        plain = repro.compile(problem, "direct")
        fused = repro.compile(problem, "direct", optimize_level=1)
        np.testing.assert_allclose(
            plain.run(backend="density_matrix").data,
            fused.run(backend="density_matrix").data,
            atol=1e-10,
        )

    @pytest.mark.parametrize("seed", range(2))
    def test_sampling_backend_distribution_matches_statevector(self, seed):
        problem = random_problem(seed + 60, num_qubits=4)
        program = repro.compile(problem, "direct")
        exact_probs = program.run(backend="statevector").probabilities()
        result = program.run(backend="sampling", shots=50_000, rng=seed)
        tv = 0.5 * np.abs(result.empirical_probabilities() - exact_probs).sum()
        assert tv < 3.0 * np.sqrt(16 / 50_000)

    def test_noisy_density_run_degrades_gracefully(self):
        from repro.noise import NoiseModel

        problem = random_problem(13, num_qubits=4)
        clean = repro.compile(problem, "direct")
        noisy = repro.compile(
            problem, "direct", noise_model=NoiseModel.uniform_depolarizing(0.01)
        )
        psi = clean.run(backend="statevector")
        rho = noisy.run(backend="density_matrix")
        assert abs(rho.trace() - 1.0) < 1e-9
        assert rho.purity() < 1.0
        # Strictly degraded, but still better than the maximally-mixed floor.
        assert 1.0 / 16.0 < rho.fidelity(psi) < 1.0 - 1e-6


class TestExactOracle:
    """The exact backend is Trotter-free ground truth for evolution programs."""

    @pytest.mark.parametrize("strategy", EVOLUTION_STRATEGIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_commuting_hamiltonians_match_exactly(self, strategy, seed):
        # Diagonal factors commute, so a single Trotter step is already exact
        # and every backend must hit the oracle to full precision.
        problem = random_problem(seed, alphabet=DIAGONAL_ALPHABET)
        program = repro.compile(problem, strategy, optimize_level=1)
        oracle = program.run(backend="exact")
        assert fidelity(oracle, program.run(backend="statevector")) > EXACT_FIDELITY
        assert fidelity(oracle, program.run(backend="sparse")) > EXACT_FIDELITY
        assert fidelity(oracle, program.run(backend="kernel")) > EXACT_FIDELITY

    def test_trotter_error_converges_to_the_oracle(self):
        problem = random_problem(5, num_qubits=4)
        oracle = repro.compile(problem, "direct").run(backend="exact")
        errors = []
        for steps in (1, 4, 16):
            state = repro.compile(problem, "direct", steps=steps, order=2).run(
                backend="statevector"
            )
            errors.append(1 - fidelity(oracle, state))
        assert errors[2] <= errors[0]
        assert errors[2] < 1e-6

    def test_exact_never_builds_a_circuit(self):
        program = repro.compile(random_problem(3), "direct")
        program.run(backend="exact")
        assert not program.is_built

    @pytest.mark.parametrize("strategy", ("block_encoding", "mpf"))
    def test_exact_rejects_non_evolution_programs(self, strategy):
        program = repro.compile(random_problem(2, num_qubits=3, num_terms=2), strategy)
        with pytest.raises(CompileError, match="exact backend"):
            program.run(backend="exact")


class TestRunManyAmortization:
    """A sweep through run_many builds and fuses each program exactly once."""

    def test_initial_state_sweep_reuses_caches(self):
        problem = random_problem(7, num_qubits=4, time=0.2)
        program = repro.compile(problem, "direct", optimize_level=1)
        states = list(range(4))
        swept = run_many([program] * len(states), "sparse", initial_states=states)
        # The fused circuit and the CSR operators were each built once ...
        assert program.execution_circuit is program.execution_circuit
        assert program.sparse_operators() is program.sparse_operators()
        # ... and the swept results match individual runs.
        for state, result in zip(states, swept):
            again = program.run(backend="sparse", initial_state=state)
            assert fidelity(result, again) > EXACT_FIDELITY

    def test_mismatched_sweep_lengths_raise(self):
        program = repro.compile(random_problem(7, num_qubits=3), "direct")
        with pytest.raises(CompileError, match="initial states"):
            run_many([program], "statevector", initial_states=[0, 1])


@pytest.mark.slow
class TestBeyondTheDenseLimit:
    """>10-qubit workloads, gated behind ``--runslow``."""

    def test_sparse_backend_matches_exact_on_12_qubits(self):
        problem = random_problem(
            21, num_qubits=12, num_terms=4, alphabet=DIAGONAL_ALPHABET
        )
        program = repro.compile(problem, "direct", optimize_level=1)
        oracle = program.run(backend="exact")
        assert fidelity(oracle, program.run(backend="sparse")) > EXACT_FIDELITY

    def test_kernel_backend_matches_exact_on_14_qubits(self):
        problem = random_problem(22, num_qubits=14, num_terms=5)
        program = repro.compile(problem, "direct", steps=8, order=2)
        oracle = program.run(backend="exact")
        kernel = program.run(backend="kernel")
        assert program.evolution_plan() is not None
        assert fidelity(oracle, kernel) > 1 - 1e-4  # Trotter error only
