"""The usual strategy: Pauli-string Hamiltonian simulation (Eq. 2–3, Figs. 8–10).

For each Pauli string ``P`` with (real) coefficient ``β`` the circuit for
``exp(-i t β P)`` diagonalises every factor to ``Z``, accumulates the parity of
the support on one qubit with a CX ladder (linear or pyramidal, Fig. 25),
applies ``RZ(2 t β)`` and uncomputes.  This is the baseline the paper's direct
strategy is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.core.basis_change import parity_accumulation, pauli_diagonalisation
from repro.exceptions import OperatorError
from repro.operators.pauli import PauliOperator, PauliString


@dataclass
class PauliEvolutionOptions:
    """Options for the usual-strategy circuits."""

    parity_mode: str = "linear"  # "linear" or "pyramid" (Fig. 25)


def pauli_string_evolution(
    string: PauliString,
    coefficient: float,
    time: float,
    *,
    num_qubits: int | None = None,
    options: PauliEvolutionOptions | None = None,
) -> QuantumCircuit:
    """Circuit for ``exp(-i t · coefficient · P)``.

    Identity strings reduce to a global phase; the generic case uses
    ``2(w-1)`` CX gates and one ``RZ`` for a string of weight ``w`` — the gate
    counts quoted in Table III and Section V-A for the usual strategy.
    """
    if abs(np.imag(coefficient)) > 1e-12:
        raise OperatorError("Pauli-string evolution needs a real coefficient")
    options = options or PauliEvolutionOptions()
    n = num_qubits if num_qubits is not None else string.num_qubits
    string = string.expand(n)
    circuit = QuantumCircuit(n, f"exp(-i·{time:.4g}·{coefficient:.4g}·{string})")
    support = string.support
    angle = 2.0 * time * float(np.real(coefficient))
    if not support:
        circuit.global_phase = -time * float(np.real(coefficient))
        return circuit

    labels = tuple(string[q] for q in support)
    diag = pauli_diagonalisation(n, support, labels)
    rot_qubit = support[-1]
    parity = parity_accumulation(n, support, rot_qubit, mode=options.parity_mode)

    circuit.compose(diag)
    circuit.compose(parity)
    circuit.rz(angle, rot_qubit)
    circuit.compose(parity.inverse())
    circuit.compose(diag.inverse())
    return circuit


def pauli_trotter_step(
    operator: PauliOperator,
    time: float,
    *,
    num_qubits: int | None = None,
    options: PauliEvolutionOptions | None = None,
) -> QuantumCircuit:
    """One first-order product-formula step over every string of the operator."""
    if not operator.is_hermitian():
        raise OperatorError("Pauli operator must have real coefficients (Hermitian)")
    n = num_qubits if num_qubits is not None else operator.num_qubits
    circuit = QuantumCircuit(n, f"pauli-trotter(t={time:.4g})")
    for string, coeff in operator.items():
        circuit.compose(
            pauli_string_evolution(string, float(np.real(coeff)), time, num_qubits=n,
                                   options=options)
        )
    return circuit


def pauli_evolution_gate_counts(string: PauliString) -> dict[str, int]:
    """Analytic gate counts of one Pauli-string evolution (usual strategy).

    ``2(w-1)`` CX, one ``RZ`` and the single-qubit basis changes, with ``w``
    the Pauli weight.
    """
    w = string.weight
    if w == 0:
        return {"cx": 0, "rz": 0, "single_qubit_clifford": 0}
    basis = sum(2 for c in string.labels if c == "X") + sum(4 for c in string.labels if c == "Y")
    return {"cx": 2 * (w - 1), "rz": 1, "single_qubit_clifford": basis}


def pauli_operator_rotation_count(operator: PauliOperator) -> int:
    """Number of arbitrary rotations per Trotter step for the usual strategy.

    One ``RZ`` per non-identity Pauli string: this is the count that grows
    exponentially with the term order once a Single Component Basis term has
    been mapped to Pauli strings.
    """
    return sum(1 for string, _ in operator.items() if string.weight > 0)
