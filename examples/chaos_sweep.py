"""Chaos engineering for sweeps: inject faults, finish anyway, prove it.

1. run a small sampling sweep fault-free and serially — the reference;
2. arm a deterministic fault plan via ``REPRO_FAULTS``: one pool worker is
   SIGKILLed mid-point (fleet-wide ``@once`` through the shared state
   directory), every second shared-memory export hits a fake ``ENOSPC``,
   and every cache write fails as if the disk were full;
3. run the same sweep on the resilient 2-worker :class:`ProcessExecutor` —
   the watchdog restarts the killed pool, shm exports fall back to the
   pickle pipe, cache puts degrade to "computed but not stored";
4. verify the chaos run's results are bit-identical to the reference;
5. print the ``resilience.*`` counters that made every absorbed fault
   visible.

Run with ``python examples/chaos_sweep.py``.
"""

import os
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import resilience
from repro.runtime import ProcessExecutor, SweepSpec
from repro.runtime.executor import execute_spec
from repro.telemetry import metrics
from repro.utils.serialization import canonical_json


def main() -> None:
    # ------------------------------------------------------------------ 1.
    problem = repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3}, time=0.3, name="chaos-demo",
    )
    sweep = SweepSpec(
        problem=problem,
        strategies=("direct", "pauli"),
        steps=(1, 2, 4, 8),
        backend="sampling",
        run_kwargs={"shots": 256},
        seed=11,
        name="chaos-grid",
    )
    payloads = [spec.to_dict() for _, spec in sweep.expand()]
    reference = [execute_spec(payload) for payload in payloads]
    print(f"reference: {len(reference)} points, fault-free and serial")

    # ------------------------------------------------------------------ 2.
    state = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    plan = (
        f"state={state};seed=3;"
        "worker.execute:kill@once;"
        "shm.export:raise=ENOSPC@every=2;"
        "cache.put:raise=ENOSPC"
    )
    os.environ[resilience.FAULTS_ENV] = plan  # inherited by pool workers
    resilience.reset_process()
    print(f"armed {resilience.FAULTS_ENV}={plan}")

    # ------------------------------------------------------------------ 3.
    try:
        executor = ProcessExecutor(2, point_timeout=60.0, max_restarts=2)
        outcomes = executor.map_specs(payloads)
    finally:
        del os.environ[resilience.FAULTS_ENV]
        resilience.configure_faults(None)

    # ------------------------------------------------------------------ 4.
    assert len(outcomes) == len(reference)
    for got, want in zip(outcomes, reference):
        assert got["ok"], got.get("error")
        assert canonical_json(got["result"]) == canonical_json(want["result"])
        for name in want.get("arrays") or {}:
            np.testing.assert_array_equal(
                np.asarray(got["arrays"][name]), np.asarray(want["arrays"][name])
            )
    print(f"chaos run: all {len(outcomes)} points bit-identical to the reference")
    assert (state / "worker.execute.0.fired").exists()
    print("the SIGKILL really fired (fleet-wide marker claimed) — the pool "
          "was killed and restarted mid-sweep")

    # ------------------------------------------------------------------ 5.
    print("\nresilience counters (what the sweep absorbed):")
    for name in (
        "resilience.retries",
        "resilience.timeouts",
        "shm.export_fallbacks",
    ):
        print(f"  {name:<28} {metrics.counter(name)}")
    print("(workers count their own fallbacks/faults in-process; a service "
          "daemon aggregates them fleet-wide via `repro-service health`)")


if __name__ == "__main__":
    main()
