"""Unit tests for the non-Hermitian dilation (Section V-E)."""

import numpy as np
import pytest

from repro.operators import (
    Hamiltonian,
    SCBTerm,
    dilate_hamiltonian,
    dilate_matrix,
    dilate_term,
    dilation_term_counts,
    pauli_decompose_matrix,
    pauli_dilation_from_operator,
    scb_decompose_matrix,
)


class TestDilateMatrix:
    def test_block_structure(self, rng):
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        dilated = dilate_matrix(matrix)
        np.testing.assert_allclose(dilated[:4, 4:], matrix)
        np.testing.assert_allclose(dilated[4:, :4], matrix.conj().T)
        np.testing.assert_allclose(dilated[:4, :4], 0.0)

    def test_dilation_is_hermitian(self, rng):
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        dilated = dilate_matrix(matrix)
        np.testing.assert_allclose(dilated, dilated.conj().T)

    def test_action_on_embedded_vector(self, rng):
        # H (|0> ⊗ |a>) = |1> ⊗ A|a>  (Eq. 27)
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        vec = rng.normal(size=4) + 1j * rng.normal(size=4)
        embedded = np.concatenate([vec, np.zeros(4)])
        out = dilate_matrix(matrix) @ embedded
        np.testing.assert_allclose(out[:4], 0.0, atol=1e-12)
        np.testing.assert_allclose(out[4:], matrix.conj().T @ vec, atol=1e-12)

    def test_rejects_non_square(self):
        from repro.exceptions import OperatorError

        with pytest.raises(OperatorError):
            dilate_matrix(np.ones((2, 3)))


class TestDilateTerms:
    def test_dilate_term_adds_sigma_dag_prefix(self):
        term = SCBTerm.from_label("nX", 0.5)
        dilated = dilate_term(term)
        assert dilated.label == "dnX"
        assert dilated.coefficient == 0.5

    def test_dilated_hamiltonian_matrix(self, rng):
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        ham = scb_decompose_matrix(matrix, hermitian=False)
        dilated = dilate_hamiltonian(ham)
        np.testing.assert_allclose(dilated.matrix(), dilate_matrix(matrix), atol=1e-10)

    def test_term_count_preserved(self, rng):
        matrix = rng.normal(size=(8, 8))
        matrix[np.abs(matrix) < 1.0] = 0.0
        ham = scb_decompose_matrix(matrix, hermitian=False)
        assert dilate_hamiltonian(ham).num_terms == ham.num_terms


class TestTermCountComparison:
    def test_counts_structure(self, rng):
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        counts = dilation_term_counts(matrix)
        assert counts["scb_terms"] == counts["scb_terms_dilated"]
        assert counts["pauli_terms_dilated"] >= counts["pauli_terms"]

    def test_pauli_dilation_from_operator_matches_matrix(self, rng):
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        pauli_a = pauli_decompose_matrix(matrix)
        dilated_op = pauli_dilation_from_operator(pauli_a)
        np.testing.assert_allclose(
            dilated_op.matrix(num_qubits=3), dilate_matrix(matrix), atol=1e-10
        )

    def test_pauli_dilation_term_growth(self, rng):
        # Each Pauli string of A yields up to two strings (X⊗P and Y⊗P).
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        pauli_a = pauli_decompose_matrix(matrix)
        dilated = pauli_dilation_from_operator(pauli_a)
        assert dilated.num_terms <= 2 * pauli_a.num_terms
        assert dilated.num_terms > pauli_a.num_terms
