"""Deterministic, seeded fault injection for the whole sweep stack.

A chaos claim ("a sweep survives any single failure") is only provable if the
failures can be *produced on demand, reproducibly*.  This module provides the
production side: named **fault sites** instrumented into the hot paths —
``cache.put``, ``cache.get``, ``cache.put.torn``, ``shm.export``,
``worker.execute``, ``protocol.send``, ``daemon.claim`` — and a
:class:`FaultPlan` that decides, deterministically, which calls at which
sites misbehave and how.

The hook is :func:`fault_point`::

    def _put_encoded(self, key, ...):
        fault_point("cache.put")        # may raise OSError(ENOSPC), sleep, …
        ...

and follows the telemetry null-singleton discipline: with no plan configured
and ``REPRO_FAULTS`` unset, a call is one module-global read plus one raw
environ-dict lookup — benched alongside the telemetry overhead claim at
well under 2% of a grid point (see ``benchmarks/bench_resilience_overhead.py``).

Plans come from the ``REPRO_FAULTS`` environment variable (so externally
spawned workers — pool processes, ``repro.service worker`` fleets — inherit
the same chaos), or programmatically via :func:`configure_faults`.

``REPRO_FAULTS`` syntax — ``;``-separated entries::

    REPRO_FAULTS = entry [";" entry]*
    entry        = "seed=" INT            # plan-level RNG seed (default 0)
                 | "state=" DIR           # plan-level marker dir for @once
                 | rule
    rule         = SITE ":" action ["@" mod ["," mod]*]
    action       = "raise" ["=" EXC]      # EXC: ENOSPC EACCES EIO OSError
                 |                        #      ConnectionError TimeoutError
                 |                        #      ConnectionResetError
                 |                        #      BrokenPipeError (default:
                 |                        #      FaultInjected)
                 | "delay=" SECONDS       # sleep, e.g. a hung point
                 | "kill"                 # SIGKILL this process
    mod          = "n=" K                 # fire on the K-th call (1-based)
                 | "every=" K             # fire on every K-th call
                 | "after=" K             # only calls strictly after the K-th
                 | "p=" FLOAT             # fire with probability p (seeded)
                 | "times=" M             # stop after M fires (per process)
                 | "once"                 # fire once — fleet-wide when the
                 |                        # plan has a state= dir (atomic
                 |                        # marker file), else per process

Examples::

    REPRO_FAULTS='cache.put:raise=ENOSPC@n=2'
    REPRO_FAULTS='seed=7;shm.export:raise=ENOSPC@p=0.5,times=3'
    REPRO_FAULTS='state=/tmp/chaos;worker.execute:kill@once'
    REPRO_FAULTS='protocol.send:raise=ConnectionError@every=4'

Determinism: every probabilistic rule draws from its own
``random.Random(f"{seed}:{site}:{rule_index}")`` stream keyed only on the
plan seed and the rule's identity, and every counting trigger uses a
per-rule call counter — so the same plan over the same per-process call
sequence injects exactly the same faults.  Every fire increments the
``resilience.faults_injected`` counter (plus a per-site
``resilience.faults.<site>`` counter), so a chaos run can assert the fault
actually happened.
"""

from __future__ import annotations

import errno
import logging
import os
import random
import re
import signal
import threading
import time
from pathlib import Path

from repro.exceptions import ReproError
from repro.telemetry import metrics

logger = logging.getLogger("repro.resilience.faults")

#: The environment variable carrying the fault plan (inherited by workers).
FAULTS_ENV = "REPRO_FAULTS"

# Raw-environ fast path for the disabled check, mirroring telemetry.spans:
# os.environ.get is a Python-level MutableMapping call — too slow for a hook
# on every instrumented hot path.  On POSIX CPython the backing dict stays in
# sync with putenv/monkeypatch, so the disabled path is one dict lookup.
_ENV_KEY = FAULTS_ENV.encode() if os.name == "posix" else FAULTS_ENV
_ENV_DATA = getattr(os.environ, "_data", None) if os.name == "posix" else None


def _env_value() -> "str | None":
    if _ENV_DATA is not None:
        raw = _ENV_DATA.get(_ENV_KEY)
        return None if raw is None else os.fsdecode(raw)
    return os.environ.get(FAULTS_ENV)


class FaultPlanError(ReproError):
    """Raised for an unparsable ``REPRO_FAULTS`` string or invalid rule."""


class FaultInjected(Exception):
    """The default injected exception (when a rule names no specific one).

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults must exercise the same handlers real infrastructure failures hit,
    not a library-error catch-all.
    """


def _oserror(code: int):
    def build(message: str) -> OSError:
        return OSError(code, f"{os.strerror(code)} [injected: {message}]")

    return build


#: Exception names a ``raise=`` action accepts, mapped to constructors.
EXCEPTIONS: "dict[str, object]" = {
    "ENOSPC": _oserror(errno.ENOSPC),
    "EACCES": _oserror(errno.EACCES),
    "EIO": _oserror(errno.EIO),
    "OSError": lambda m: OSError(f"injected: {m}"),
    "ConnectionError": lambda m: ConnectionError(f"injected: {m}"),
    "ConnectionResetError": lambda m: ConnectionResetError(f"injected: {m}"),
    "BrokenPipeError": lambda m: BrokenPipeError(f"injected: {m}"),
    "TimeoutError": lambda m: TimeoutError(f"injected: {m}"),
    "FaultInjected": lambda m: FaultInjected(m),
}

_RULE_RE = re.compile(
    r"^(?P<site>[A-Za-z0-9_.\-]+):(?P<action>raise|delay|kill)"
    r"(?:=(?P<arg>[^@]+))?(?:@(?P<mods>.+))?$"
)


class FaultRule:
    """One site's misbehaviour: an action plus its (deterministic) trigger."""

    __slots__ = (
        "site", "action", "arg", "n", "every", "after", "p", "times", "once",
        "index", "calls", "fires", "_rng",
    )

    def __init__(
        self,
        site: str,
        action: str,
        arg: "str | float | None" = None,
        *,
        n: "int | None" = None,
        every: "int | None" = None,
        after: int = 0,
        p: "float | None" = None,
        times: "int | None" = None,
        once: bool = False,
        index: int = 0,
        seed: int = 0,
    ):
        if action not in ("raise", "delay", "kill"):
            raise FaultPlanError(f"unknown fault action {action!r}")
        if action == "raise":
            name = str(arg) if arg is not None else "FaultInjected"
            if name not in EXCEPTIONS:
                raise FaultPlanError(
                    f"unknown exception {name!r} for {site}:raise "
                    f"(choose from {', '.join(sorted(EXCEPTIONS))})"
                )
            arg = name
        elif action == "delay":
            try:
                arg = float(arg)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise FaultPlanError(
                    f"delay needs seconds, got {arg!r} for site {site}"
                ) from None
        if p is not None and not 0.0 <= p <= 1.0:
            raise FaultPlanError(f"p must be in [0, 1], got {p}")
        self.site = site
        self.action = action
        self.arg = arg
        self.n = n
        self.every = every
        self.after = int(after)
        self.p = p
        self.times = 1 if once and times is None else times
        self.once = once
        self.index = int(index)
        self.calls = 0
        self.fires = 0
        self._rng = random.Random(f"{seed}:{site}:{index}")

    def should_fire(self) -> bool:
        """Advance this rule's call counter and decide (deterministically)."""
        self.calls += 1
        if self.times is not None and self.fires >= self.times:
            return False
        if self.calls <= self.after:
            return False
        if self.n is not None and self.calls != self.n:
            return False
        if self.every is not None and self.calls % self.every != 0:
            return False
        if self.p is not None and self._rng.random() >= self.p:
            return False
        return True

    def describe(self) -> str:
        mods = []
        for name in ("n", "every", "p", "times"):
            value = getattr(self, name)
            if value is not None:
                mods.append(f"{name}={value}")
        if self.after:
            mods.append(f"after={self.after}")
        if self.once:
            mods.append("once")
        arg = "" if self.arg is None else f"={self.arg}"
        at = f"@{','.join(mods)}" if mods else ""
        return f"{self.site}:{self.action}{arg}{at}"


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s evaluated at every fault site.

    Thread-safe: daemon worker threads share one plan; the trigger counters
    advance under a lock.  Cross-process sharing goes through the
    environment (each process evaluates its own counters) plus the optional
    ``state`` directory, whose atomic marker files make ``@once`` rules fire
    exactly once across an entire fleet.
    """

    def __init__(
        self,
        rules: "list[FaultRule] | None" = None,
        *,
        seed: int = 0,
        state_dir: "str | Path | None" = None,
    ):
        self.seed = int(seed)
        self.state_dir = Path(state_dir).expanduser() if state_dir else None
        self.rules: "list[FaultRule]" = list(rules or [])
        self._by_site: "dict[str, list[FaultRule]]" = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._lock = threading.Lock()
        self.injected: "dict[str, int]" = {}

    # ------------------------------------------------------------------ parse

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a ``REPRO_FAULTS``-syntax string."""
        seed = 0
        state_dir: "str | None" = None
        raw_rules: "list[dict]" = []
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    seed = int(entry[5:])
                except ValueError:
                    raise FaultPlanError(f"bad seed entry {entry!r}") from None
                continue
            if entry.startswith("state="):
                state_dir = entry[6:]
                continue
            match = _RULE_RE.match(entry)
            if match is None:
                raise FaultPlanError(
                    f"cannot parse fault rule {entry!r} "
                    f"(expected site:action[=arg][@mod,...])"
                )
            spec = {
                "site": match["site"],
                "action": match["action"],
                "arg": match["arg"],
            }
            for mod in (match["mods"] or "").split(","):
                mod = mod.strip()
                if not mod:
                    continue
                if mod == "once":
                    spec["once"] = True
                    continue
                name, _, value = mod.partition("=")
                if name in ("n", "every", "after", "times"):
                    try:
                        spec[name] = int(value)
                    except ValueError:
                        raise FaultPlanError(
                            f"bad integer modifier {mod!r} in {entry!r}"
                        ) from None
                elif name == "p":
                    try:
                        spec[name] = float(value)
                    except ValueError:
                        raise FaultPlanError(
                            f"bad probability {mod!r} in {entry!r}"
                        ) from None
                else:
                    raise FaultPlanError(f"unknown modifier {mod!r} in {entry!r}")
            raw_rules.append(spec)
        rules = [
            FaultRule(index=index, seed=seed, **spec)
            for index, spec in enumerate(raw_rules)
        ]
        return cls(rules, seed=seed, state_dir=state_dir)

    # ------------------------------------------------------------------- fire

    def fire(self, site: str) -> None:
        """Evaluate ``site``'s rules; perform the first action that triggers."""
        rules = self._by_site.get(site)
        if not rules:
            return
        chosen: "FaultRule | None" = None
        with self._lock:
            for rule in rules:
                if rule.should_fire() and self._claim_once(rule):
                    rule.fires += 1
                    self.injected[site] = self.injected.get(site, 0) + 1
                    chosen = rule
                    break
        if chosen is None:
            return
        metrics.incr("resilience.faults_injected")
        metrics.incr(f"resilience.faults.{site}")
        logger.warning(
            "injecting fault at %s (rule %s, call %d, pid %d)",
            site, chosen.describe(), chosen.calls, os.getpid(),
        )
        self._act(chosen)

    def _claim_once(self, rule: FaultRule) -> bool:
        """Atomically claim a ``@once`` rule's fleet-wide marker file."""
        if not rule.once or self.state_dir is None:
            return True
        marker = self.state_dir / f"{rule.site}.{rule.index}.fired"
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False  # another process already fired this rule
        except OSError:
            return True  # unusable state dir: degrade to per-process once
        os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
        os.close(fd)
        return True

    def _act(self, rule: FaultRule) -> None:
        if rule.action == "delay":
            time.sleep(float(rule.arg))  # a hung point, in miniature
            return
        if rule.action == "kill":
            # SIGKILL leaves no chance for cleanup — exactly the failure the
            # lease reaper and the pool watchdog exist for.
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - unreachable
        raise EXCEPTIONS[str(rule.arg)](f"fault at {rule.site}")

    # ------------------------------------------------------------ bookkeeping

    def fired(self) -> "dict[str, int]":
        """Per-site injected-fault counts for this process."""
        with self._lock:
            return dict(self.injected)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.state_dir is not None:
            parts.append(f"state={self.state_dir}")
        parts.extend(rule.describe() for rule in self.rules)
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FaultPlan({self.describe()!r})"


# ---------------------------------------------------------------------------
# The process-wide hook
# ---------------------------------------------------------------------------

_PLAN: "FaultPlan | None" = None
_ENV_SEEN: "str | None" = None


def configure_faults(plan: "FaultPlan | str | None") -> "FaultPlan | None":
    """Install (or with ``None`` clear) the process-wide fault plan.

    Accepts a ready :class:`FaultPlan` or a ``REPRO_FAULTS``-syntax string.
    Clearing also forgets any plan previously installed from the
    environment, so the next :func:`fault_point` re-reads ``REPRO_FAULTS``.
    """
    global _PLAN, _ENV_SEEN
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _PLAN = plan
    _ENV_SEEN = None
    return plan


def active_plan() -> "FaultPlan | None":
    """The currently installed plan (``None``: fault injection off)."""
    return _PLAN


def faults_enabled() -> bool:
    """Whether any fault plan is configured (or waiting in ``REPRO_FAULTS``)."""
    return _PLAN is not None or bool(_env_value())


def reset_process() -> None:
    """Drop inherited plan state so a forked worker re-reads the environment.

    Pool initializers call this: under ``fork`` a worker would otherwise
    inherit the parent's plan object mid-count, making the worker's triggers
    depend on how many calls the *parent* had made.
    """
    global _PLAN, _ENV_SEEN
    _PLAN = None
    _ENV_SEEN = None


def _install_from_env() -> "FaultPlan | None":
    global _PLAN, _ENV_SEEN
    text = _env_value()
    if text == _ENV_SEEN:
        return _PLAN
    _ENV_SEEN = text
    if not text or not text.strip():
        _PLAN = None
        return None
    try:
        _PLAN = FaultPlan.parse(text)
    except FaultPlanError as exc:
        # A typo in REPRO_FAULTS must not take production down: log, run clean.
        logger.error("ignoring unparsable %s: %s", FAULTS_ENV, exc)
        _PLAN = None
        return None
    logger.warning(
        "fault injection active (pid %d): %s", os.getpid(), _PLAN.describe()
    )
    return _PLAN


def fault_point(site: str) -> None:
    """Evaluate the fault plan at ``site`` — a near-free no-op when disabled.

    The disabled path (no plan configured, ``REPRO_FAULTS`` unset) is one
    global read plus one raw environ-dict lookup.  With a plan installed the
    site's rules are evaluated and the first triggered action performed:
    an injected exception raises *from here*, a delay sleeps here, a kill
    terminates the process here.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_DATA is not None:
            if _ENV_DATA.get(_ENV_KEY) is None and _ENV_SEEN is None:
                return
        elif os.environ.get(FAULTS_ENV) is None and _ENV_SEEN is None:
            return
        plan = _install_from_env()
        if plan is None:
            return
    plan.fire(site)
