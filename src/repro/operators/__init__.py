"""Operator substrate: Single Component Basis terms, Pauli operators, conversions."""

from repro.operators.algebra import (
    anticommutator,
    cayley_table,
    commutator,
    simplify_to_single_operator,
    single_qubit_product,
)
from repro.operators.conversion import (
    conversion_is_exact,
    formalism_switch_term_count,
    hermitian_pair_to_pauli,
    number_term_to_z_strings,
    pauli_operator_to_scb,
    pauli_string_to_scb,
    pauli_term_count,
    scb_term_to_pauli,
    scb_terms_to_pauli,
    z_string_to_number_terms,
)
from repro.operators.dilation import (
    dilate_hamiltonian,
    dilate_matrix,
    dilate_term,
    dilation_term_counts,
    pauli_dilation_from_operator,
)
from repro.operators.hamiltonian import Hamiltonian, HermitianFragment, hamiltonian_from_terms
from repro.operators.matrix_decomposition import (
    pauli_decompose_matrix,
    pauli_reconstruction_error,
    scb_decompose_matrix,
    scb_reconstruction_error,
    single_component_transition,
)
from repro.operators.pauli import PauliOperator, PauliString
from repro.operators.scb_term import SCBTerm
from repro.operators.single_component import (
    ALL_SCB_OPERATORS,
    Family,
    SCBOperator,
    pauli_matrix,
)

__all__ = [
    "anticommutator",
    "cayley_table",
    "commutator",
    "simplify_to_single_operator",
    "single_qubit_product",
    "conversion_is_exact",
    "formalism_switch_term_count",
    "hermitian_pair_to_pauli",
    "number_term_to_z_strings",
    "pauli_operator_to_scb",
    "pauli_string_to_scb",
    "pauli_term_count",
    "scb_term_to_pauli",
    "scb_terms_to_pauli",
    "z_string_to_number_terms",
    "dilate_hamiltonian",
    "dilate_matrix",
    "dilate_term",
    "dilation_term_counts",
    "pauli_dilation_from_operator",
    "Hamiltonian",
    "HermitianFragment",
    "hamiltonian_from_terms",
    "pauli_decompose_matrix",
    "pauli_reconstruction_error",
    "scb_decompose_matrix",
    "scb_reconstruction_error",
    "single_component_transition",
    "PauliOperator",
    "PauliString",
    "SCBTerm",
    "ALL_SCB_OPERATORS",
    "Family",
    "SCBOperator",
    "pauli_matrix",
]
