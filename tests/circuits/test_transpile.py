"""Unit tests for the transpiler."""

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    TranspileOptions,
    circuit_unitary,
    circuits_equivalent,
    transpile,
)
from repro.circuits.gate import ControlledGate, StandardGate, UnitaryGate
from repro.exceptions import DecompositionError


def _composite_circuit() -> QuantumCircuit:
    qc = QuantumCircuit(5, "composite")
    qc.mcx([0, 1, 2], 3)
    qc.mcp(0.4, [1, 2], 4, 0b01)
    qc.mcrx(0.7, [0, 3], 4)
    qc.mcry(0.3, [2, 4], 0, 0b10)
    qc.mcrz(-0.5, [1], 3)
    qc.ccx(0, 1, 2)
    qc.ccz(2, 3, 4)
    qc.ccp(1.1, 0, 2, 4)
    qc.cswap(0, 1, 2)
    qc.h(0)
    qc.cx(1, 2)
    return qc


class TestNoAncillaTranspile:
    def test_equivalence(self):
        qc = _composite_circuit()
        out = transpile(qc)
        assert circuits_equivalent(qc, out, up_to_global_phase=True)

    def test_max_arity_two(self):
        out = transpile(_composite_circuit())
        assert all(len(instr.qubits) <= 2 for instr in out)

    def test_no_extra_qubits(self):
        out = transpile(_composite_circuit())
        assert out.num_qubits == 5

    def test_plain_gates_pass_through(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        out = transpile(qc)
        assert out.count_ops() == {"h": 1, "cx": 1}

    def test_global_phase_preserved(self):
        qc = QuantumCircuit(1)
        qc.global_phase = 0.8
        assert transpile(qc).global_phase == pytest.approx(0.8)

    def test_controlled_generic_unitary(self, random_unitary_2x2):
        qc = QuantumCircuit(3)
        qc.mc_unitary(random_unitary_2x2, [0, 1], [2], ctrl_state=0b01)
        out = transpile(qc)
        assert circuits_equivalent(qc, out, up_to_global_phase=True)
        assert all(len(instr.qubits) <= 2 for instr in out)

    def test_controlled_gphase(self):
        qc = QuantumCircuit(2)
        qc.append(ControlledGate(StandardGate("gphase", (0.5,)), 1, 1), (0, 1))
        out = transpile(qc)
        assert circuits_equivalent(qc, out)

    def test_multiqubit_unitary_rejected(self):
        qc = QuantumCircuit(3)
        matrix = np.eye(8)
        qc.append(UnitaryGate(matrix), (0, 1, 2))
        with pytest.raises(DecompositionError):
            transpile(qc)

    def test_controlled_multiqubit_base_rejected(self):
        qc = QuantumCircuit(3)
        qc.mc_unitary(np.eye(4), [0], [1, 2])
        with pytest.raises(DecompositionError):
            transpile(qc)


class TestVChainTranspile:
    def test_adds_ancillas_and_stays_correct(self):
        qc = QuantumCircuit(6)
        qc.mcx([0, 1, 2, 3, 4], 5)
        out = transpile(qc, TranspileOptions(mcx_mode="vchain"))
        assert out.num_qubits == 6 + 3
        full = circuit_unitary(out)
        dim = 1 << 6
        indices = [i << 3 for i in range(dim)]
        block = full[np.ix_(indices, indices)]
        np.testing.assert_allclose(block, circuit_unitary(qc), atol=1e-8)

    def test_vchain_cheaper_than_noancilla_for_many_controls(self):
        qc = QuantumCircuit(7)
        qc.mcx(list(range(6)), 6)
        no_anc = transpile(qc, TranspileOptions(mcx_mode="noancilla"))
        v_chain = transpile(qc, TranspileOptions(mcx_mode="vchain"))
        assert v_chain.num_two_qubit_gates() < no_anc.num_two_qubit_gates()


class TestTwoQubitExpansion:
    def test_expand_to_cx_basis(self):
        qc = QuantumCircuit(2)
        qc.cz(0, 1)
        qc.swap(0, 1)
        qc.crz(0.4, 0, 1)
        qc.rzz(0.3, 0, 1)
        qc.rxx(0.2, 0, 1)
        qc.ryy(0.6, 0, 1)
        qc.cry(0.5, 0, 1)
        out = transpile(qc, TranspileOptions(expand_two_qubit=True, keep_cp=True))
        names = set(out.count_ops())
        assert names <= {"cx", "cp", "h", "s", "sdg", "rz", "ry", "p", "x"}
        assert circuits_equivalent(qc, out, up_to_global_phase=True)

    def test_keep_cp_false_removes_cp(self):
        qc = QuantumCircuit(2)
        qc.cp(0.9, 0, 1)
        out = transpile(qc, TranspileOptions(expand_two_qubit=True, keep_cp=False))
        assert "cp" not in out.count_ops()
        assert circuits_equivalent(qc, out, up_to_global_phase=True)

    def test_cx_untouched(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        out = transpile(qc, TranspileOptions(expand_two_qubit=True))
        assert out.count_ops() == {"cx": 1}
