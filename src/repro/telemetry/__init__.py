"""repro.telemetry — span tracing, metrics, and logging for the whole stack.

Three small, zero-dependency pieces:

* :mod:`repro.telemetry.spans` — ``with span("execute.evolve"): ...`` tracing
  with parent links and cross-process propagation, off by default
  (``REPRO_TRACE=1`` to enable), writing JSONL trace files per process;
* :mod:`repro.telemetry.metrics` — always-on counters/gauges/histograms
  (cache hits, shm bytes, fusion ratio, lease churn) with :func:`snapshot`;
* :mod:`repro.telemetry.logs` — the ``repro.*`` logger hierarchy and the
  ``REPRO_LOG``-driven :func:`configure_logging` for entry points.

``python -m repro.telemetry report <dir>`` renders merged traces; see
:mod:`repro.telemetry.report`.
"""

from repro.telemetry import metrics
from repro.telemetry.logs import configure_logging, log_level
from repro.telemetry.spans import (
    TRACE_DIR_ENV,
    TRACE_ENV,
    TraceWriter,
    configure,
    current_trace_context,
    reset,
    span,
    trace_context,
    trace_dir,
    tracing_enabled,
)

__all__ = [
    "TRACE_DIR_ENV",
    "TRACE_ENV",
    "TraceWriter",
    "configure",
    "configure_logging",
    "current_trace_context",
    "log_level",
    "metrics",
    "reset",
    "span",
    "trace_context",
    "trace_dir",
    "tracing_enabled",
]
