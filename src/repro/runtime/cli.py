"""``python -m repro.runtime`` — run specs, sweep grids, manage the cache.

Three subcommands::

    python -m repro.runtime run SPEC.json [--strategy S] [--backend B] ...
    python -m repro.runtime sweep SPEC.json [--workers N] [--out OUT.json] ...
    python -m repro.runtime cache {ls,stats,clear} [--dir DIR]

``SPEC.json`` is a serialized :class:`~repro.runtime.spec.RunSpec`,
:class:`~repro.runtime.spec.SweepSpec` or bare
:class:`~repro.compile.problem.SimulationProblem` (detected by shape); flags
override or supply the remaining fields.  Results print as a table, and
``--out`` writes the full :meth:`ResultSet.to_json` document.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exceptions import ReproError


def _load_payload(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"spec file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"spec file {path} is not valid JSON: {exc}") from None


def _load_problem(payload: dict):
    from repro.compile.problem import SimulationProblem

    if "hamiltonian" in payload:
        return SimulationProblem.from_dict(payload)
    if "problem" in payload:
        return SimulationProblem.from_dict(payload["problem"])
    raise ReproError(
        "spec JSON must contain a problem (a SimulationProblem dict or a "
        "run/sweep spec with a 'problem' field)"
    )


def _make_session(args: argparse.Namespace, workers: int | None = None):
    from repro.runtime.session import Session

    cache: "bool | str | None"
    if getattr(args, "no_cache", False):
        cache = False
    else:
        cache = getattr(args, "cache_dir", None)
    return Session(
        cache=cache,
        executor=workers,
        progress=None if getattr(args, "quiet", False) else True,
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="write span traces to DIR (enables tracing for this invocation; "
             "inspect with 'python -m repro.telemetry report DIR')",
    )


def _apply_trace_flag(args: argparse.Namespace) -> None:
    if getattr(args, "trace", None):
        import os

        from repro import telemetry

        # The env vars travel into pool workers regardless of start method.
        os.environ[telemetry.TRACE_ENV] = "1"
        os.environ[telemetry.TRACE_DIR_ENV] = str(args.trace)
        telemetry.configure(enabled=True, directory=args.trace)


def _csv(text: str) -> list[str]:
    return [item for item in (part.strip() for part in text.split(",")) if item]


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runtime.results import result_to_json
    from repro.runtime.spec import RunSpec

    _apply_trace_flag(args)
    payload = _load_payload(args.spec)
    if payload.get("spec") == "run":
        spec = RunSpec.from_dict(payload)
    else:
        spec = RunSpec(problem=_load_problem(payload))
    overrides = {}
    if args.strategy is not None:
        overrides["strategy"] = args.strategy
    if args.backend is not None:
        overrides["backend"] = args.backend
    run_kwargs = dict(spec.run_kwargs)
    if args.shots is not None:
        run_kwargs["shots"] = args.shots
    if args.seed is not None:
        run_kwargs["rng"] = args.seed
    if run_kwargs != spec.run_kwargs:
        overrides["run_kwargs"] = run_kwargs
    if overrides:
        from dataclasses import replace

        spec = replace(spec, **overrides)

    session = _make_session(args)
    record = session.run(spec)
    if record.error is not None:
        print(f"run FAILED ({record.error['type']}): {record.error['message']}")
        print(record.error["traceback"], file=sys.stderr)
        return 1
    source = "cache" if record.cached else f"computed in {record.wall_time:.3f}s"
    print(f"{spec.describe()}\n  key {record.key[:16]}… ({source})")
    encoded = result_to_json(record.value)
    if args.json:
        print(json.dumps(encoded, indent=2))
    else:
        kind = encoded.pop("kind")
        encoded.pop("arrays", None)
        summary = f"  result: {kind}"
        if kind == "sampling":
            top = sorted(encoded["counts"].items(), key=lambda kv: -kv[1])[:5]
            summary += f", {encoded['shots']} shots, top outcomes {dict(top)}"
        elif encoded:
            summary += f" {json.dumps(encoded)[:200]}"
        else:
            summary += f" ({type(record.value).__name__})"
        print(summary)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runtime.spec import SweepSpec

    _apply_trace_flag(args)
    payload = _load_payload(args.spec)
    if payload.get("spec") == "sweep":
        spec = SweepSpec.from_dict(payload)
    else:
        axes: dict = {}
        if args.strategies:
            axes["strategies"] = tuple(_csv(args.strategies))
        if args.steps:
            axes["steps"] = tuple(int(s) for s in _csv(args.steps))
        if args.backend:
            axes["backend"] = args.backend
        if args.seed is not None:
            axes["seed"] = args.seed
        spec = SweepSpec(problem=_load_problem(payload), **axes)

    session = _make_session(args, workers=args.workers)
    results = session.sweep(spec)
    if args.json:
        # Structured output for scripts: the full ResultSet document on
        # stdout, nothing else.  The exit code still reflects failures.
        print(results.to_json())
    else:
        print(results.table())
        print(f"\n{results.summary()} (sweep key {results.sweep_key[:16]}…)")
    if args.out:
        Path(args.out).write_text(results.to_json())
        if not args.json:
            print(f"wrote {args.out}")
    # Any grid point that recorded a failure makes the whole invocation
    # nonzero, so CI pipelines cannot silently pass over a diverged point.
    return 0 if results.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime.cache import ResultCache

    cache = ResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache {stats['directory']}")
        print(f"  entries     {stats['entries']}")
        print(f"  total bytes {stats['total_bytes']:,} "
              f"(cap {stats['max_bytes']:,})")
        return 0
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"cache {cache.directory} is empty")
            return 0
        for entry in entries:
            label = f"  {entry.label}" if entry.label else ""
            print(
                f"{entry.key[:16]}…  {entry.kind:<17} "
                f"{entry.size_bytes:>10,} B{label}"
            )
        print(f"{len(entries)} entries")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    raise ReproError(f"unknown cache action {args.action!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Run and sweep simulation problems with caching and fan-out.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute one run spec (or problem) file")
    run.add_argument("spec", help="JSON file: RunSpec or SimulationProblem")
    run.add_argument("--strategy", default=None)
    run.add_argument("--backend", default=None)
    run.add_argument("--shots", type=int, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--json", action="store_true", help="print the full result JSON")
    _add_cache_flags(run)
    run.set_defaults(fn=_cmd_run)

    sweep = sub.add_parser("sweep", help="execute a sweep spec (or problem) file")
    sweep.add_argument("spec", help="JSON file: SweepSpec or SimulationProblem")
    sweep.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: serial)")
    sweep.add_argument("--strategies", default=None, metavar="A,B",
                       help="comma-separated strategy axis (problem files only)")
    sweep.add_argument("--steps", default=None, metavar="1,2,4",
                       help="comma-separated Trotter-step axis (problem files only)")
    sweep.add_argument("--backend", default=None)
    sweep.add_argument("--seed", type=int, default=None,
                       help="root seed for sampling sweeps")
    sweep.add_argument("--out", default=None, metavar="OUT.json",
                       help="write the full ResultSet JSON here")
    sweep.add_argument("--json", action="store_true",
                       help="print the full ResultSet JSON to stdout "
                            "instead of the table")
    _add_cache_flags(sweep)
    sweep.set_defaults(fn=_cmd_sweep)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("ls", "stats", "clear"))
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR)")
    cache.set_defaults(fn=_cmd_cache)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    from repro.telemetry import configure_logging

    configure_logging()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
