"""Hermitian dilation of non-Hermitian matrices (Section V-E, Eq. 25–28).

To process a non-Hermitian matrix ``A`` (e.g. the system matrix of a Quantum
Linear System Problem) the paper uses the dilation

    ``H = σ†_0 ⊗ A + h.c.``

acting on one extra qubit, so that ``H (|0⟩⊗|a⟩) = |1⟩ ⊗ A|a⟩``.  In the
Single Component Basis this adds exactly one factor to every existing term
(the term count is preserved), whereas the Pauli route
``H = (X - iY)/2 ⊗ A + (X + iY)/2 ⊗ A†`` multiplies the number of Pauli
strings by (up to) four.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import OperatorError
from repro.operators.conversion import scb_term_to_pauli
from repro.operators.hamiltonian import Hamiltonian
from repro.operators.matrix_decomposition import pauli_decompose_matrix, scb_decompose_matrix
from repro.operators.pauli import PauliOperator, PauliString
from repro.operators.scb_term import SCBTerm
from repro.operators.single_component import SCBOperator


def dilate_term(term: SCBTerm) -> SCBTerm:
    """Prefix a term with ``σ†`` on a new most-significant qubit (Eq. 25)."""
    return SCBTerm(term.coefficient, (SCBOperator.SIGMA_DAG,) + term.factors)


def dilate_hamiltonian(ham: Hamiltonian) -> Hamiltonian:
    """Dilation ``H = σ†_0 ⊗ A + h.c.`` of a (possibly non-Hermitian) operator sum.

    The input Hamiltonian is interpreted *as written* (its terms are summed
    without adding Hermitian conjugates) and each term gains a ``σ†`` factor on
    the new qubit 0.  The output, once its fragments are gathered with their
    Hermitian conjugates, is the Hermitian dilation of the input matrix: the
    number of terms is unchanged, which is the point of Eq. 28.
    """
    out = Hamiltonian(ham.num_qubits + 1)
    for term in ham.terms:
        out.add_term(dilate_term(term))
    return out


def dilate_matrix(matrix: np.ndarray | sp.spmatrix) -> np.ndarray:
    """Dense Hermitian dilation ``[[0, A], [A†, 0]]`` of an arbitrary matrix.

    With the bit convention of this library (new qubit = most significant),
    ``σ†_0 ⊗ A`` occupies the upper-right block, so the dilation matrix is
    ``[[0, A], [A†, 0]]``.
    """
    dense = np.asarray(matrix.todense() if sp.issparse(matrix) else matrix, dtype=complex)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise OperatorError(f"matrix must be square, got {dense.shape}")
    dim = dense.shape[0]
    out = np.zeros((2 * dim, 2 * dim), dtype=complex)
    out[:dim, dim:] = dense
    out[dim:, :dim] = dense.conj().T
    return out


def dilation_term_counts(matrix: np.ndarray | sp.spmatrix) -> dict[str, int]:
    """Term-count comparison of the two dilation routes for a matrix.

    Returns a dictionary with

    * ``scb_terms`` — SCB terms of ``A`` (one per stored component);
    * ``scb_terms_dilated`` — SCB terms of ``σ†⊗A + h.c.`` (identical count);
    * ``pauli_terms`` — Pauli strings of ``A`` alone (usual decomposition);
    * ``pauli_terms_dilated`` — Pauli strings of the Hermitian dilation, i.e.
      what the usual strategy actually has to exponentiate (Eq. 28 gives the
      ×4 upper bound, cancellations can reduce it).
    """
    ham = scb_decompose_matrix(matrix, hermitian=False)
    dilated = dilate_hamiltonian(ham)

    dense = np.asarray(matrix.todense() if sp.issparse(matrix) else matrix, dtype=complex)
    pauli_a = pauli_decompose_matrix(dense)
    pauli_dilated = pauli_decompose_matrix(dilate_matrix(dense))

    return {
        "scb_terms": ham.num_terms,
        "scb_terms_dilated": dilated.num_terms,
        "pauli_terms": pauli_a.num_terms,
        "pauli_terms_dilated": pauli_dilated.num_terms,
    }


def pauli_dilation_from_operator(operator: PauliOperator) -> PauliOperator:
    """Pauli route of Eq. 28: ``(X-iY)/2 ⊗ A + (X+iY)/2 ⊗ A†`` explicitly.

    Mostly used to demonstrate the ×4 blow-up: every Pauli string ``P`` of
    ``A`` with coefficient ``β`` appears as ``X⊗P`` and ``Y⊗P`` strings in the
    dilation (with coefficients combining ``β`` and ``β*``).
    """
    out = PauliOperator()
    for string, coeff in operator.items():
        x_string = PauliString("X" + string.labels)
        y_string = PauliString("Y" + string.labels)
        out = out + PauliOperator({
            x_string: (coeff + np.conj(coeff)) / 2.0,
            y_string: 1j * (coeff - np.conj(coeff)) / 2.0,
        })
    return out.simplify()
