"""E1 — Table I: Single Component Basis operators and their Pauli mappings.

Regenerates Table I (operator, matrix, Pauli expansion), verifies each mapping
against the matrices, and reports the term-count bookkeeping that motivates the
direct strategy (each non-Pauli factor doubles the number of Pauli strings).
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.operators import ALL_SCB_OPERATORS, SCBTerm, pauli_matrix, pauli_term_count, scb_term_to_pauli


def _mapping_rows():
    rows = []
    for op in ALL_SCB_OPERATORS:
        expansion = " + ".join(
            f"({coeff.real:+.1f}{coeff.imag:+.1f}j)·{label}" for label, coeff in op.pauli_expansion.items()
        )
        rebuilt = sum(c * pauli_matrix(p) for p, c in op.pauli_expansion.items())
        exact = bool(np.allclose(rebuilt, op.matrix))
        rows.append([op.label, expansion, exact])
    return rows


def test_table1_scb_to_pauli_mapping(benchmark):
    rows = benchmark(_mapping_rows)
    assert all(row[2] for row in rows)
    print_table("Table I — SCB operators and their Pauli mappings", ["operator", "mapping", "exact"], rows)

    # Term-count consequence: k non-Pauli factors -> 2^k Pauli strings.
    count_rows = []
    for label in ("n", "ns", "nsd", "nsdm", "nsdmn"):
        term = SCBTerm.from_label(label)
        count_rows.append([label, pauli_term_count(term), scb_term_to_pauli(term).num_terms])
    print_table(
        "Pauli strings generated per SCB term (2^k growth)",
        ["term", "predicted 2^k", "measured strings"],
        count_rows,
    )
    for _, predicted, measured in count_rows:
        assert measured <= predicted
