"""Cost read-out by phase estimation — the origin of the direct strategy (Section V-A.1).

The paper traces the direct-strategy idea back to the Grover-Adaptive-Search
construction of Gilliam et al., which loads the cost of a binary assignment
into a phase register *without* expanding the cost function over Pauli strings.
This module reproduces that primitive on top of the library's phase-estimation
and direct phase-separator machinery:

* :func:`cost_unitary` — ``exp(-i t H_P)`` built with the direct strategy;
* :func:`evaluate_cost_by_qpe` — read the cost of one assignment off the
  evaluation register (exact whenever the costs are representable on the
  chosen number of bits);
* :func:`cost_spectrum_readout` — the full cost histogram of a superposition,
  i.e. the "superposition of eigenstates" reading the paper describes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.applications.hubo.circuits import initial_superposition
from repro.applications.hubo.problem import HUBOProblem
from repro.circuits.circuit import QuantumCircuit
from repro.core.phase_estimation import (
    estimate_eigenvalue,
    phase_estimation_circuit,
    readout_distribution,
)
from repro.exceptions import ProblemError


def cost_unitary(problem: HUBOProblem, time: float, *, strategy: str = "direct") -> QuantumCircuit:
    """``exp(-i·time·H_P)`` for the problem's (diagonal) cost Hamiltonian.

    Compiled through the :mod:`repro.compile` pipeline; ``"usual"`` is kept as
    an alias of the pipeline's ``"pauli"`` strategy for the old signature.
    """
    from repro.compile.pipeline import compile_problem

    pipeline_strategy = {"direct": "direct", "usual": "pauli", "pauli": "pauli"}.get(strategy)
    if pipeline_strategy is None:
        raise ProblemError(f"unknown strategy {strategy!r}")
    # Match the formalism to the strategy (boolean → n̂-strings → C^nP gates,
    # spin → Z-strings → R_{Z^k} ladders) so the emitted gate family is the
    # one Table III attributes to the strategy, as phase_separator does.
    native = "boolean" if pipeline_strategy == "direct" else "spin"
    if problem.formalism != native:
        problem = problem.convert_formalism()
    return compile_problem(problem.to_simulation_problem(time), pipeline_strategy).circuit


def _default_time(problem: HUBOProblem, num_eval_qubits: int) -> float:
    """Time step mapping the integer-ish cost range onto the phase window.

    With ``t = 2π / 2^m`` an integer cost ``E`` lands exactly on the grid point
    ``-E mod 2^m`` of an ``m``-bit register (the Gilliam et al. convention).
    """
    del problem
    return 2.0 * math.pi / (1 << num_eval_qubits)


def evaluate_cost_by_qpe(
    problem: HUBOProblem,
    assignment: list[int],
    num_eval_qubits: int,
    *,
    time: float | None = None,
    strategy: str = "direct",
) -> tuple[float, float]:
    """Estimate the cost of one assignment through phase estimation.

    Returns ``(estimated_cost, peak_probability)``.  Exact (probability 1) when
    ``cost · time / 2π`` is a multiple of ``2^{-m}`` — e.g. integer costs with
    the default ``time``.
    """
    if len(assignment) != problem.num_variables:
        raise ProblemError("assignment length does not match the problem")
    if time is None:
        time = _default_time(problem, num_eval_qubits)
    preparation = QuantumCircuit(problem.num_variables, "assignment")
    for qubit, bit in enumerate(assignment):
        if bit:
            preparation.x(qubit)
    unitary = cost_unitary(problem, time, strategy=strategy)
    circuit = phase_estimation_circuit(unitary, num_eval_qubits, state_preparation=preparation)
    return estimate_eigenvalue(circuit, num_eval_qubits, time)


def cost_spectrum_readout(
    problem: HUBOProblem,
    num_eval_qubits: int,
    *,
    time: float | None = None,
    strategy: str = "direct",
) -> dict[float, float]:
    """Cost histogram of the uniform superposition of assignments.

    Runs QPE on ``|+⟩^{⊗n}``: the evaluation register ends in a superposition
    of the problem's cost values, each with probability proportional to the
    number of assignments attaining it (for on-grid costs).
    """
    if time is None:
        time = _default_time(problem, num_eval_qubits)
    unitary = cost_unitary(problem, time, strategy=strategy)
    circuit = phase_estimation_circuit(
        unitary, num_eval_qubits,
        state_preparation=initial_superposition(problem.num_variables),
    )
    distribution = readout_distribution(circuit, num_eval_qubits)
    histogram: dict[float, float] = {}
    period = 2.0 * math.pi / abs(time)
    for outcome, probability in distribution.items():
        phase = outcome / (1 << num_eval_qubits)
        energy = -2.0 * math.pi * phase / time
        while energy <= -period / 2.0:
            energy += period
        while energy > period / 2.0:
            energy -= period
        key = round(energy, 6)
        histogram[key] = histogram.get(key, 0.0) + probability
    return histogram


def grover_threshold_counts(
    problem: HUBOProblem, threshold: float
) -> tuple[int, int]:
    """Classical helper: how many assignments fall strictly below a cost threshold.

    Used to sanity-check the adaptive-search loop (the quantum part of GAS —
    amplitude amplification on the sign qubit of the phase register — is out of
    scope of the paper and of this reproduction).
    """
    energies = problem.energy_vector()
    below = int(np.sum(energies < threshold))
    return below, energies.size
