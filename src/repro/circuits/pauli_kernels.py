"""Matrix-free Pauli-rotation kernels over bit masks.

Trotter circuits are entirely structured: every gate is ``exp(-i·θ·P)`` for a
Pauli string ``P``, and that exponential can be applied to a statevector in a
single vectorized pass without building any gate matrix.  Encode ``P`` in the
symplectic (mask) representation — an X mask (which qubits carry ``X`` or
``Y``), a Z mask (which carry ``Z`` or ``Y``) and the i-power collected from
the ``Y`` factors — and its action on a basis state ``|j⟩`` is a bit flip, a
parity sign and a constant phase::

    P |j⟩ = i^{|Y|} · (-1)^{parity(j & z)} · |j ^ x⟩

so ``exp(-i·θ·P)·ψ = cos θ·ψ − i·sin θ·(P·ψ)`` costs two O(2^n) passes: one
XOR gather and one fused multiply-add.  Three regimes get dedicated paths:

* ``x == 0`` — the string is diagonal; the rotation is an element-wise phase
  ``e^{∓iθ}`` selected by the Z-mask parity (no gather at all);
* ``z == 0`` — the string is a pure bit-flip permutation; no parity signs;
* ``x == z == 0`` — the identity; the rotation is the global phase ``e^{-iθ}``.

Masks follow the library's bit convention (qubit 0 is the most significant
bit, :mod:`repro.utils.bits`).  Every kernel accepts a trailing batch axis:
``state`` may be ``(2^n,)`` or ``(2^n, batch)``, so one pass evolves many
initial states (or whole unitaries) at once.

These kernels power the ``kernel`` execution backend via
:class:`repro.compile.plan.EvolutionPlan`, which lowers a Trotter schedule to
a sequence of mask tuples once and replays it across steps and sweeps.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.exceptions import SimulationError

try:  # NumPy >= 2.0
    _popcount = np.bitwise_count
except AttributeError:  # pragma: no cover - fallback for older NumPy
    def _popcount(values: np.ndarray) -> np.ndarray:
        values = values.astype(np.uint64, copy=True)
        count = np.zeros_like(values)
        while values.any():
            count += values & 1
            values >>= np.uint64(1)
        return count


#: Basis-index arrays are shared across rotations (and plans); one entry per
#: register width, biggest registers win when the cache is trimmed.
_INDEX_CACHE: dict[int, np.ndarray] = {}
_INDEX_CACHE_SIZE = 4


def basis_indices(num_qubits: int) -> np.ndarray:
    """The cached ``arange(2^n)`` used for mask arithmetic (read-only)."""
    if num_qubits < 0:
        raise SimulationError("num_qubits must be non-negative")
    indices = _INDEX_CACHE.get(num_qubits)
    if indices is None:
        dtype = np.uint32 if num_qubits <= 31 else np.uint64
        indices = np.arange(1 << num_qubits, dtype=dtype)
        indices.setflags(write=False)
        if len(_INDEX_CACHE) >= _INDEX_CACHE_SIZE:
            del _INDEX_CACHE[min(_INDEX_CACHE)]
        _INDEX_CACHE[num_qubits] = indices
    return indices


def pauli_masks(labels: str) -> tuple[int, int, complex]:
    """Symplectic encoding ``(x_mask, z_mask, phase)`` of a Pauli label string.

    ``phase`` is ``(-i)^{|Y|}``, the constant in ``(P·ψ)[k] = phase ·
    (-1)^{parity(k & z)} · ψ[k ^ x]`` once the parity is evaluated on the
    *output* index ``k``.  Qubit 0 carries the most significant mask bit.
    """
    x_mask = z_mask = 0
    for qubit, label in enumerate(labels):
        if label not in "IXYZ":
            raise SimulationError(f"invalid Pauli label {label!r} in {labels!r}")
        bit = 1 << (len(labels) - 1 - qubit)
        if label in ("X", "Y"):
            x_mask |= bit
        if label in ("Z", "Y"):
            z_mask |= bit
    phase = (-1j) ** ((x_mask & z_mask).bit_count() % 4)
    return x_mask, z_mask, phase


def _num_qubits_of(state: np.ndarray) -> int:
    dim = state.shape[0]
    if dim == 0 or dim & (dim - 1):
        raise SimulationError(f"state length {dim} is not a power of two")
    return dim.bit_length() - 1


def _parity(indices: np.ndarray, mask: int) -> np.ndarray:
    """Boolean parity of ``indices & mask`` (True where odd)."""
    return (_popcount(indices & indices.dtype.type(mask)) & 1).astype(bool)


def _column(array: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Reshape a per-amplitude array so it broadcasts over trailing batch axes."""
    if state.ndim == 1:
        return array
    return array.reshape(array.shape + (1,) * (state.ndim - 1))


def apply_diagonal_rotation(state: np.ndarray, z_mask: int, theta: float) -> None:
    """In-place ``exp(-i·θ·Z_mask)``: an element-wise ``e^{∓iθ}`` phase."""
    if z_mask == 0:
        state *= cmath.exp(-1j * theta)
        return
    indices = basis_indices(_num_qubits_of(state))
    odd = _parity(indices, z_mask)
    phases = np.where(odd, cmath.exp(1j * theta), cmath.exp(-1j * theta))
    state *= _column(phases, state)


def apply_permutation_rotation(state: np.ndarray, x_mask: int, theta: float) -> None:
    """In-place ``exp(-i·θ·X_mask)``: mix each amplitude with its XOR partner."""
    if x_mask == 0:
        state *= cmath.exp(-1j * theta)
        return
    indices = basis_indices(_num_qubits_of(state))
    flipped = state[indices ^ indices.dtype.type(x_mask)]
    flipped *= -1j * math.sin(theta)
    state *= math.cos(theta)
    state += flipped


def apply_pauli_rotation(
    state: np.ndarray,
    x_mask: int,
    z_mask: int,
    phase: complex,
    theta: float,
) -> np.ndarray:
    """``exp(-i·θ·P)·ψ`` for the Pauli string encoded by the masks.

    ``phase`` is the ``(-i)^{|Y|}`` prefactor returned by :func:`pauli_masks`.
    ``state`` is a vector of length ``2^n`` (optionally with a trailing batch
    axis) and is not modified; the rotated array is returned.  The diagonal
    (``x_mask == 0``), pure-permutation (``z_mask == 0``) and identity cases
    take their dedicated fast paths.
    """
    state = np.array(state, dtype=complex, copy=True)
    _apply_rotation_inplace(state, x_mask, z_mask, phase, theta)
    return state


def _apply_rotation_inplace(
    state: np.ndarray, x_mask: int, z_mask: int, phase: complex, theta: float
) -> None:
    """The in-place kernel behind :func:`apply_pauli_rotation` and plans."""
    if x_mask == 0:
        apply_diagonal_rotation(state, z_mask, theta)
        return
    if z_mask == 0:
        apply_permutation_rotation(state, x_mask, theta)
        return
    indices = basis_indices(_num_qubits_of(state))
    flipped = state[indices ^ indices.dtype.type(x_mask)]
    flipped *= -1j * phase * math.sin(theta)
    odd = _column(_parity(indices, z_mask), state)
    np.negative(flipped, out=flipped, where=odd)
    state *= math.cos(theta)
    state += flipped


def apply_pauli_string(
    state: np.ndarray, x_mask: int, z_mask: int, phase: complex
) -> np.ndarray:
    """``P·ψ`` itself (no exponential) — the building block and its own test oracle."""
    state = np.asarray(state, dtype=complex)
    indices = basis_indices(_num_qubits_of(state))
    out = phase * state[indices ^ indices.dtype.type(x_mask)]
    if z_mask:
        odd = _column(_parity(indices, z_mask), state)
        np.negative(out, out=out, where=odd)
    return out


def apply_rotation_sequence(
    state: np.ndarray,
    rotations,
    *,
    repetitions: int = 1,
) -> np.ndarray:
    """Apply a sequence of ``(x_mask, z_mask, phase, theta)`` tuples, repeated.

    The generic rotation-by-rotation executor (one copy up front, every
    rotation in place) — used directly for ad-hoc mask schedules and as the
    oracle the plan tests compare against.  Note that
    :meth:`repro.compile.plan.EvolutionPlan.evolve` does NOT go through this:
    it replays pre-baked per-fragment tables, which is the hot path.
    """
    state = np.array(state, dtype=complex, copy=True)
    for _ in range(repetitions):
        for x_mask, z_mask, phase, theta in rotations:
            _apply_rotation_inplace(state, x_mask, z_mask, phase, theta)
    return state
