"""Unit tests for commutation grouping / ordering and the multi-product formula."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import circuit_unitary
from repro.core import (
    commuting_group_count,
    fragments_commute,
    group_commuting_fragments,
    grouped_trotter_circuit,
    mpf_coefficients,
    mpf_error,
    mpf_one_norm,
    multi_product_formula,
    ordered_trotter_circuit,
    ordering_error_spread,
    single_formula_error,
    direct_fragments,
)
from repro.exceptions import TrotterError
from repro.operators import Hamiltonian, SCBTerm
from repro.operators.hamiltonian import HermitianFragment
from repro.utils.linalg import spectral_norm_diff


@pytest.fixture
def mixed_hamiltonian() -> Hamiltonian:
    ham = Hamiltonian(3)
    ham.add_label("ZII", 0.4)
    ham.add_label("IZZ", 0.3)
    ham.add_label("Xsd", 0.5)
    ham.add_label("nsI", 0.7)
    return ham


class TestCommutationGrouping:
    def test_fragments_commute_diagonal_pair(self):
        a = HermitianFragment(SCBTerm.from_label("ZII", 1.0), False)
        b = HermitianFragment(SCBTerm.from_label("InZ", 1.0), False)
        assert fragments_commute(a, b)

    def test_fragments_anticommute_pair(self):
        a = HermitianFragment(SCBTerm.from_label("X", 1.0), False)
        b = HermitianFragment(SCBTerm.from_label("Z", 1.0), False)
        assert not fragments_commute(a, b)

    def test_grouping_covers_all_fragments(self, mixed_hamiltonian):
        groups = group_commuting_fragments(mixed_hamiltonian)
        assert sum(len(g) for g in groups) == mixed_hamiltonian.num_terms
        assert commuting_group_count(mixed_hamiltonian) == len(groups)

    def test_groups_are_internally_commuting(self, mixed_hamiltonian):
        for group in group_commuting_fragments(mixed_hamiltonian):
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    assert fragments_commute(a, b)

    def test_fully_commuting_hamiltonian_single_group(self):
        ham = Hamiltonian(3)
        ham.add_label("ZII", 0.4)
        ham.add_label("nnI", -0.3)
        ham.add_label("IZn", 0.7)
        assert commuting_group_count(ham) == 1


class TestOrderedTrotter:
    def test_ordered_circuit_matches_default_order(self, mixed_hamiltonian):
        default = ordered_trotter_circuit(mixed_hamiltonian, 0.3, [0, 1, 2, 3])
        from repro.core import direct_trotter_step

        reference = direct_trotter_step(mixed_hamiltonian, 0.3)
        assert spectral_norm_diff(circuit_unitary(default), circuit_unitary(reference)) < 1e-12

    def test_invalid_permutation(self, mixed_hamiltonian):
        with pytest.raises(TrotterError):
            ordered_trotter_circuit(mixed_hamiltonian, 0.3, [0, 1, 2])
        with pytest.raises(TrotterError):
            ordered_trotter_circuit(mixed_hamiltonian, 0.3, [0, 1, 2, 3], steps=0)

    def test_ordering_changes_error(self, mixed_hamiltonian):
        low, high = ordering_error_spread(mixed_hamiltonian, 0.6, num_orderings=8, rng=1)
        assert low <= high
        assert high > 0  # non-commuting fragments: some ordering error exists

    def test_grouped_circuit_is_valid_approximation(self, mixed_hamiltonian):
        circuit = grouped_trotter_circuit(mixed_hamiltonian, 0.3, steps=4)
        exact = expm(-1j * 0.3 * mixed_hamiltonian.matrix())
        assert spectral_norm_diff(circuit_unitary(circuit), exact) < 0.05

    def test_grouped_exact_for_commuting_hamiltonian(self):
        ham = Hamiltonian(2)
        ham.add_label("ZI", 0.4)
        ham.add_label("nn", -0.3)
        circuit = grouped_trotter_circuit(ham, 0.9)
        exact = expm(-1j * 0.9 * ham.matrix())
        assert spectral_norm_diff(circuit_unitary(circuit), exact) < 1e-9


class TestMultiProductFormula:
    def test_coefficients_sum_to_one(self):
        for steps in ([1, 2], [1, 2, 3], [2, 3, 5]):
            assert sum(mpf_coefficients(steps)) == pytest.approx(1.0)

    def test_coefficients_reject_duplicates(self):
        with pytest.raises(TrotterError):
            mpf_coefficients([2, 2])

    def test_one_norm_reasonable(self):
        assert mpf_one_norm([1, 2]) < 3.0
        assert mpf_one_norm([1, 2, 3]) < 4.0

    def test_mpf_reduces_error(self, mixed_hamiltonian):
        baseline = single_formula_error(mixed_hamiltonian, 0.6, 2)
        improved = mpf_error(mixed_hamiltonian, 0.6, [1, 2])
        best = mpf_error(mixed_hamiltonian, 0.6, [1, 2, 3])
        assert improved < baseline / 5
        assert best < improved / 5

    def test_mpf_is_lcu_of_trotter_circuits(self, mixed_hamiltonian):
        fragments = direct_fragments(mixed_hamiltonian)
        decomposition = multi_product_formula(fragments, 3, 0.4, [1, 2])
        assert decomposition.num_unitaries == 2
        exact = expm(-1j * 0.4 * mixed_hamiltonian.matrix())
        assert decomposition.reconstruction_error(exact) < single_formula_error(
            mixed_hamiltonian, 0.4, 2
        )
