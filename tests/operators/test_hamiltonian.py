"""Unit tests for the Hamiltonian container and Hermitian fragments."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.exceptions import OperatorError
from repro.operators import Hamiltonian, HermitianFragment, SCBTerm, hamiltonian_from_terms


def example_hamiltonian() -> Hamiltonian:
    ham = Hamiltonian(3)
    ham.add_label("nsd", 0.8)
    ham.add_label("ZZI", 0.3)
    ham.add_label("Xnm", 0.5j)
    return ham


class TestConstruction:
    def test_add_label_and_sparse(self):
        ham = Hamiltonian(3)
        ham.add_label("nIZ", 1.0)
        ham.add_sparse({0: "s", 2: "d"}, 0.5)
        assert ham.num_terms == 2
        assert ham.terms[1].label == "sId"

    def test_width_mismatch(self):
        ham = Hamiltonian(2)
        with pytest.raises(OperatorError):
            ham.add_term(SCBTerm.from_label("nnn"))

    def test_zero_coefficient_dropped(self):
        ham = Hamiltonian(1)
        ham.add_label("n", 0.0)
        assert ham.num_terms == 0

    def test_from_terms(self):
        ham = hamiltonian_from_terms([SCBTerm.from_label("ns", 1.0)])
        assert ham.num_qubits == 2

    def test_from_terms_empty(self):
        with pytest.raises(OperatorError):
            hamiltonian_from_terms([])

    def test_addition_and_scaling(self):
        a = Hamiltonian(2)
        a.add_label("nI", 1.0)
        b = Hamiltonian(2)
        b.add_label("In", 1.0)
        total = (a + b) * 2.0
        np.testing.assert_allclose(total.matrix(), 2.0 * (a.matrix() + b.matrix()))


class TestFragments:
    def test_auto_hc_flags(self):
        fragments = example_hamiltonian().hermitian_fragments()
        assert [f.include_hc for f in fragments] == [True, False, True]

    def test_fragment_matrices_are_hermitian(self):
        for fragment in example_hamiltonian().hermitian_fragments():
            matrix = fragment.matrix()
            np.testing.assert_allclose(matrix, matrix.conj().T, atol=1e-12)

    def test_fragment_to_pauli(self):
        fragment = HermitianFragment(SCBTerm.from_label("sd", 0.4), True)
        np.testing.assert_allclose(
            fragment.to_pauli().matrix(num_qubits=2), fragment.matrix(), atol=1e-12
        )

    def test_matrix_sums_fragments(self):
        ham = example_hamiltonian()
        total = sum(f.matrix() for f in ham.hermitian_fragments())
        np.testing.assert_allclose(ham.matrix(), total, atol=1e-12)

    def test_matrix_is_hermitian(self):
        matrix = example_hamiltonian().matrix()
        np.testing.assert_allclose(matrix, matrix.conj().T, atol=1e-12)

    def test_matrix_without_hc(self):
        ham = Hamiltonian(1)
        ham.add_label("s", 1.0)
        asym = ham.matrix(include_hc=False)
        assert asym[0, 1] == 0 and asym[1, 0] == 1

    def test_is_hermitian_as_written(self):
        sym = Hamiltonian(1)
        sym.add_label("s", 1.0)
        sym.add_label("d", 1.0)
        assert sym.is_hermitian_as_written()
        asym = Hamiltonian(1)
        asym.add_label("s", 1.0)
        assert not asym.is_hermitian_as_written()


class TestPhysics:
    def test_ground_state_of_z(self):
        ham = Hamiltonian(1)
        ham.add_label("Z", 1.0)
        vals, vecs = ham.ground_state()
        assert vals[0] == pytest.approx(-1.0)
        np.testing.assert_allclose(np.abs(vecs[:, 0]), [0, 1], atol=1e-9)

    def test_ground_state_sparse_path(self):
        ham = Hamiltonian(7)
        for q in range(7):
            ham.add_sparse({q: "Z"}, 1.0)
        vals, _ = ham.ground_state()
        assert vals[0] == pytest.approx(-7.0)

    def test_expectation_value(self):
        ham = Hamiltonian(1)
        ham.add_label("Z", 2.0)
        assert ham.expectation_value(np.array([1.0, 0.0])) == pytest.approx(2.0)

    def test_evolve_exact_matches_dense(self, rng):
        ham = example_hamiltonian()
        psi = rng.normal(size=8) + 1j * rng.normal(size=8)
        psi /= np.linalg.norm(psi)
        expected = expm(-1j * 0.42 * ham.matrix()) @ psi
        np.testing.assert_allclose(ham.evolve_exact(psi, 0.42), expected, atol=1e-9)

    def test_term_order_histogram(self):
        assert example_hamiltonian().term_order_histogram() == {3: 2, 2: 1}

    def test_one_norm(self):
        assert example_hamiltonian().one_norm() == pytest.approx(0.8 + 0.3 + 0.5)

    def test_to_pauli_matches_matrix(self):
        ham = example_hamiltonian()
        np.testing.assert_allclose(
            ham.to_pauli().matrix(num_qubits=3), ham.matrix(), atol=1e-12
        )
