"""Unit tests for the matrix decompositions (Section V-D and the Pauli LCU)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DecompositionError
from repro.operators import (
    pauli_decompose_matrix,
    pauli_reconstruction_error,
    scb_decompose_matrix,
    scb_reconstruction_error,
    single_component_transition,
)


class TestSingleComponentTransition:
    def test_paper_example_1222_1145(self):
        # Table II worked example: |bin[1222]><bin[1145]| on 11 qubits.
        term = single_component_transition(1222, 1145, 11)
        matrix = term.matrix(sparse=True)
        assert matrix[1222, 1145] == pytest.approx(1.0)
        assert matrix.nnz == 1

    def test_diagonal_component(self):
        term = single_component_transition(5, 5, 3, 2.0)
        matrix = term.matrix(sparse=True)
        assert matrix[5, 5] == pytest.approx(2.0)
        assert matrix.nnz == 1

    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=10**6))
    def test_arbitrary_component(self, a, b, seed):
        coeff = complex(np.cos(seed), np.sin(seed))
        term = single_component_transition(a, b, 5, coeff)
        matrix = term.matrix(sparse=True)
        assert matrix[a, b] == pytest.approx(coeff)
        assert matrix.nnz == 1


class TestSCBDecomposition:
    def test_hermitian_matrix_reconstruction(self, rng):
        matrix = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        matrix = matrix + matrix.conj().T
        ham = scb_decompose_matrix(matrix)
        assert scb_reconstruction_error(matrix, ham) < 1e-10

    def test_sparse_matrix_term_count(self, rng):
        dense = np.zeros((8, 8), dtype=complex)
        dense[0, 3] = 1.5
        dense[3, 0] = 1.5
        dense[5, 5] = -2.0
        ham = scb_decompose_matrix(dense)
        # one off-diagonal (upper triangle) + one diagonal component
        assert ham.num_terms == 2
        assert scb_reconstruction_error(dense, ham) < 1e-12

    def test_non_hermitian_matrix(self, rng):
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        ham = scb_decompose_matrix(matrix, hermitian=False)
        rebuilt = ham.matrix(include_hc=False)
        np.testing.assert_allclose(rebuilt, matrix, atol=1e-10)

    def test_accepts_sparse_input(self):
        matrix = sp.random(16, 16, density=0.1, random_state=0, format="csr")
        matrix = matrix + matrix.T
        ham = scb_decompose_matrix(matrix.astype(complex))
        assert scb_reconstruction_error(matrix.astype(complex), ham) < 1e-10

    def test_rejects_non_square(self):
        with pytest.raises(DecompositionError):
            scb_decompose_matrix(np.ones((2, 4)))

    def test_rejects_non_power_of_two(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            scb_decompose_matrix(np.eye(3))


class TestPauliDecomposition:
    def test_reconstruction(self, rng):
        matrix = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        op = pauli_decompose_matrix(matrix)
        assert pauli_reconstruction_error(matrix, op) < 1e-10

    def test_single_pauli_recovered(self):
        from repro.operators import PauliString

        matrix = 0.7 * PauliString("XZY").matrix()
        op = pauli_decompose_matrix(matrix)
        assert op.num_terms == 1
        assert op["XZY"] == pytest.approx(0.7)

    def test_dense_matrix_has_4n_terms(self, rng):
        matrix = rng.normal(size=(4, 4))
        op = pauli_decompose_matrix(matrix)
        assert op.num_terms <= 16

    def test_diagonal_matrix_gives_iz_strings(self):
        op = pauli_decompose_matrix(np.diag([1.0, 2.0, 3.0, 4.0]))
        assert all(set(str(s)) <= {"I", "Z"} for s, _ in op.items())

    def test_hermitian_matrix_gives_real_coefficients(self, rng):
        matrix = rng.normal(size=(8, 8))
        matrix = matrix + matrix.T
        op = pauli_decompose_matrix(matrix)
        assert op.is_hermitian()
