"""Unit tests for the term-structure analysis (the four families of Section III)."""

import pytest

from repro.core import analyze_fragment, analyze_term
from repro.exceptions import OperatorError
from repro.operators import SCBTerm
from repro.operators.hamiltonian import HermitianFragment


class TestAnalyzeTerm:
    def test_fig2_example_partition(self):
        structure = analyze_term(SCBTerm.from_label("nmmXYdnsssdYZds"))
        assert structure.number_qubits == (0, 1, 2, 6)
        assert structure.number_bits == (1, 0, 0, 1)
        assert structure.pauli_qubits == (3, 4, 11, 12)
        assert structure.pauli_labels == ("X", "Y", "Y", "Z")
        assert structure.transition_qubits == (5, 7, 8, 9, 10, 13, 14)

    def test_number_key_matches_paper(self):
        # |c> = |1001> on the number qubits 0, 1, 2, 6 of the Fig. 2 example.
        structure = analyze_term(SCBTerm.from_label("nmmXYdnsssdYZds"))
        assert structure.number_key == 0b1001

    def test_transition_kets_are_complements(self):
        structure = analyze_term(SCBTerm.from_label("sdIds"))
        width = len(structure.transition_qubits)
        assert structure.transition_ket ^ structure.transition_bra == (1 << width) - 1

    def test_flags(self):
        structure = analyze_term(SCBTerm.from_label("nXI"))
        assert structure.has_number and structure.has_pauli and not structure.has_transition

    def test_identity_only(self):
        structure = analyze_term(SCBTerm.from_label("III"))
        assert not (structure.has_number or structure.has_pauli or structure.has_transition)
        assert structure.identity_qubits == (0, 1, 2)

    def test_controls_for_rotation(self):
        structure = analyze_term(SCBTerm.from_label("nsmd"))
        qubits, bits = structure.controls_for_rotation(pivot=3)
        # transition qubits 1, 3 (pivot 3 excluded -> control on 1 with value 0);
        # number qubits 0 (n -> 1) and 2 (m -> 0).
        assert qubits == (1, 0, 2)
        assert bits == (0, 1, 0)

    def test_coefficient_passthrough(self):
        structure = analyze_term(SCBTerm.from_label("ns", 0.5 - 0.25j))
        assert structure.coefficient == 0.5 - 0.25j


class TestAnalyzeFragment:
    def test_valid_hermitian_fragment(self):
        fragment = HermitianFragment(SCBTerm.from_label("nZ", 0.4), include_hc=False)
        assert analyze_fragment(fragment).has_number

    def test_invalid_fragment_raises(self):
        fragment = HermitianFragment(SCBTerm.from_label("s", 1.0), include_hc=False)
        with pytest.raises(OperatorError):
            analyze_fragment(fragment)
