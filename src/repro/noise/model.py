"""Mapping circuit instructions to error channels.

A :class:`NoiseModel` answers one question for the density-matrix and sampling
backends: *which channels follow this instruction?*  Errors can be attached

* to specific gate names (``add_gate_error(channel, ["cx"])``),
* to every gate of a given width (``add_default_error(channel, num_qubits=2)``),
* and to the measurement record (``set_readout_error(ReadoutError(...))``).

Gate-specific entries win over width defaults.  A channel narrower than the
instruction it decorates (e.g. single-qubit depolarizing noise after a CX) is
applied independently to each qubit the instruction touches — the standard
"local noise" convention.  Attach a model to a compilation via
``CompileOptions(noise_model=...)``; ``NoiseModel.ideal()`` is the explicit
no-noise model.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.noise.channels import KrausChannel, NoiseError, ReadoutError


class NoiseModel:
    """Per-gate error channels plus an optional readout error."""

    def __init__(self) -> None:
        self._gate_errors: dict[str, list[KrausChannel]] = {}
        self._default_errors: dict[int, list[KrausChannel]] = {}
        self._readout_error: ReadoutError | None = None

    # ------------------------------------------------------------ construction

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """The explicit no-noise model (every backend treats it as absent)."""
        return cls()

    @classmethod
    def uniform_depolarizing(
        cls, p1: float, p2: float | None = None, readout: float = 0.0
    ) -> "NoiseModel":
        """The ubiquitous baseline: depolarizing noise after every gate.

        ``p1`` follows every single-qubit gate, ``p2`` (default ``10·p1``,
        capped at 1) every two-qubit gate, and ``readout`` is a symmetric
        assignment error.
        """
        from repro.noise.channels import depolarizing_channel

        model = cls()
        if p1 > 0:
            model.add_default_error(depolarizing_channel(p1), num_qubits=1)
        p2 = min(10.0 * p1, 1.0) if p2 is None else p2
        if p2 > 0:
            model.add_default_error(depolarizing_channel(p2, num_qubits=2), num_qubits=2)
        if readout > 0:
            model.set_readout_error(ReadoutError.symmetric(readout))
        return model

    def add_gate_error(
        self, channel: KrausChannel, gate_names: "str | Iterable[str]"
    ) -> "NoiseModel":
        """Attach ``channel`` after every occurrence of the named gates."""
        if not isinstance(channel, KrausChannel):
            raise NoiseError(f"expected a KrausChannel, got {type(channel).__name__}")
        names = [gate_names] if isinstance(gate_names, str) else list(gate_names)
        if not names:
            raise NoiseError("add_gate_error needs at least one gate name")
        for name in names:
            self._gate_errors.setdefault(name, []).append(channel)
        return self

    def add_default_error(
        self, channel: KrausChannel, num_qubits: int
    ) -> "NoiseModel":
        """Attach ``channel`` after every gate acting on ``num_qubits`` qubits."""
        if not isinstance(channel, KrausChannel):
            raise NoiseError(f"expected a KrausChannel, got {type(channel).__name__}")
        if num_qubits < 1:
            raise NoiseError("num_qubits must be positive")
        self._default_errors.setdefault(num_qubits, []).append(channel)
        return self

    def set_readout_error(self, error: ReadoutError) -> "NoiseModel":
        if not isinstance(error, ReadoutError):
            raise NoiseError(f"expected a ReadoutError, got {type(error).__name__}")
        self._readout_error = error
        return self

    # ----------------------------------------------------------------- queries

    @property
    def is_ideal(self) -> bool:
        """Whether the model perturbs neither the state nor the readout."""
        return (
            not self._gate_errors
            and not self._default_errors
            and self._readout_error is None
        )

    @property
    def has_gate_noise(self) -> bool:
        """Whether any channel acts on the *state* (readout error excluded)."""
        return bool(self._gate_errors or self._default_errors)

    @property
    def readout_error(self) -> ReadoutError | None:
        return self._readout_error

    @property
    def noisy_gate_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._gate_errors))

    def channels_for(
        self, gate_name: str, qubits: Sequence[int]
    ) -> list[tuple[KrausChannel, tuple[int, ...]]]:
        """The ``(channel, target_qubits)`` list to apply after one instruction.

        Gate-name entries take precedence over width defaults.  A channel on
        fewer qubits than the instruction is broadcast qubit-by-qubit; a
        channel matching the instruction width acts on its full qubit tuple.
        """
        channels = self._gate_errors.get(gate_name)
        if channels is None:
            channels = self._default_errors.get(len(qubits), [])
        placed: list[tuple[KrausChannel, tuple[int, ...]]] = []
        for channel in channels:
            if channel.num_qubits == len(qubits):
                placed.append((channel, tuple(qubits)))
            elif channel.num_qubits == 1:
                placed.extend((channel, (q,)) for q in qubits)
            else:
                raise NoiseError(
                    f"cannot place a {channel.num_qubits}-qubit channel "
                    f"{channel.name!r} on a {len(qubits)}-qubit gate "
                    f"{gate_name!r}"
                )
        return placed

    # ----------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Canonical JSON-able form consumed by the runtime content hashing.

        Gate names and width defaults are emitted in sorted order, so two
        models built by attaching the same channels in a different order
        serialize identically.
        """
        return {
            "gate_errors": {
                name: [channel.to_dict() for channel in self._gate_errors[name]]
                for name in sorted(self._gate_errors)
            },
            "default_errors": {
                str(width): [
                    channel.to_dict() for channel in self._default_errors[width]
                ]
                for width in sorted(self._default_errors)
            },
            "readout_error": (
                None if self._readout_error is None else self._readout_error.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NoiseModel":
        """Inverse of :meth:`to_dict`."""
        model = cls()
        for name, channels in payload.get("gate_errors", {}).items():
            for channel in channels:
                model.add_gate_error(KrausChannel.from_dict(channel), name)
        for width, channels in payload.get("default_errors", {}).items():
            for channel in channels:
                model.add_default_error(
                    KrausChannel.from_dict(channel), num_qubits=int(width)
                )
        readout = payload.get("readout_error")
        if readout is not None:
            model.set_readout_error(ReadoutError.from_dict(readout))
        return model

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.is_ideal:
            return "NoiseModel(ideal)"
        parts = []
        if self._gate_errors:
            parts.append(f"gates={sorted(self._gate_errors)}")
        if self._default_errors:
            parts.append(f"defaults={sorted(self._default_errors)}-qubit")
        if self._readout_error is not None:
            parts.append("readout")
        return f"NoiseModel({', '.join(parts)})"
