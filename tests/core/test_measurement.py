"""Unit tests for the fewer-observables measurement scheme (Annex C)."""

import numpy as np
import pytest

from repro.circuits import Statevector
from repro.core import (
    direct_setting_count,
    estimate_expectation,
    exact_setting_expectation,
    fragment_measurement_setting,
    pauli_setting_count,
    sampled_setting_expectation,
)
from repro.exceptions import OperatorError
from repro.operators import Hamiltonian, SCBTerm
from repro.operators.hamiltonian import HermitianFragment
from repro.utils.linalg import random_statevector


@pytest.fixture
def mixed_hamiltonian() -> Hamiltonian:
    ham = Hamiltonian(4)
    ham.add_label("nsdI", 0.8)
    ham.add_label("IZZI", 0.3)
    ham.add_label("IXsd", 0.5)
    ham.add_label("mnsd", 0.2 + 0.3j)
    ham.add_label("nnII", -0.4)
    return ham


class TestFragmentSetting:
    @pytest.mark.parametrize("label,coeff", [
        ("sd", 0.7), ("nsd", -0.4), ("Xsd", 0.9), ("nZ", 0.5), ("ZZ", 0.3), ("nm", 1.1),
    ])
    def test_setting_reproduces_fragment_expectation(self, label, coeff, rng):
        term = SCBTerm.from_label(label, coeff)
        fragment = HermitianFragment(term, include_hc=not term.is_hermitian)
        setting = fragment_measurement_setting(fragment)
        state = Statevector(random_statevector(term.num_qubits, rng))
        estimated = exact_setting_expectation(setting, state)
        exact = float(np.real(np.vdot(state.data, fragment.matrix() @ state.data)))
        assert estimated == pytest.approx(exact, abs=1e-9)

    def test_complex_coefficient_rejected(self):
        fragment = HermitianFragment(SCBTerm.from_label("sd", 1j), True)
        with pytest.raises(OperatorError):
            fragment_measurement_setting(fragment)

    def test_setting_is_single_basis_rotation(self):
        fragment = HermitianFragment(SCBTerm.from_label("ssdd", 0.5), True)
        setting = fragment_measurement_setting(fragment)
        # Only Clifford basis-change gates, no parameterised rotations needed.
        assert setting.basis_circuit.num_rotation_gates() == 0


class TestEstimateExpectation:
    def test_exact_estimation_matches_matrix(self, mixed_hamiltonian, rng):
        state = Statevector(random_statevector(4, rng))
        estimate = estimate_expectation(mixed_hamiltonian, state)
        exact = float(np.real(np.vdot(state.data, mixed_hamiltonian.matrix() @ state.data)))
        assert estimate == pytest.approx(exact, abs=1e-8)

    def test_sampled_estimation_converges(self, mixed_hamiltonian, rng):
        state = Statevector(random_statevector(4, rng))
        exact = float(np.real(np.vdot(state.data, mixed_hamiltonian.matrix() @ state.data)))
        sampled = estimate_expectation(mixed_hamiltonian, state, shots=40000, rng=3)
        assert sampled == pytest.approx(exact, abs=0.1)

    def test_sampled_single_setting(self, rng):
        fragment = HermitianFragment(SCBTerm.from_label("sd", 0.7), True)
        setting = fragment_measurement_setting(fragment)
        state = Statevector(random_statevector(2, rng))
        exact = exact_setting_expectation(setting, state)
        sampled = sampled_setting_expectation(setting, state, 30000, rng=1)
        assert sampled == pytest.approx(exact, abs=0.05)


class TestSettingCounts:
    def test_direct_count(self, mixed_hamiltonian):
        # One setting per fragment, two for the complex-coefficient fragment.
        assert direct_setting_count(mixed_hamiltonian) == 6

    def test_pauli_count_larger(self, mixed_hamiltonian):
        assert pauli_setting_count(mixed_hamiltonian) > direct_setting_count(mixed_hamiltonian)

    def test_two_body_observable_reduction(self):
        # The paper quotes 2^4 = 16 fewer observables for a two-body term: the
        # un-gathered ladder product indeed maps to 16 Pauli strings, and one
        # direct setting replaces them; after gathering with the Hermitian
        # conjugate half of the strings cancel, leaving 8 distinct settings to
        # actually measure with the usual strategy.
        from repro.operators import pauli_term_count

        ham = Hamiltonian(4)
        ham.add_label("ssdd", 0.5)
        assert pauli_term_count(ham.terms[0]) == 16
        assert direct_setting_count(ham) == 1
        assert pauli_setting_count(ham) == 8
