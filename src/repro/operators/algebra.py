"""Product algebra, commutators and anticommutators of the SCB ⊗ Pauli set.

This module reproduces Table IV (the Cayley table of the tensor-product
algebra) and Table V (commutation relations) of the paper's appendix.  The
tables are *derived from the matrices* at import time rather than hard-coded,
which both guarantees consistency with :class:`SCBOperator` and gives the test
suite an independent target to compare the paper's printed tables against.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import OperatorError
from repro.operators.single_component import ALL_SCB_OPERATORS, SCBOperator


def _match_basis(matrix: np.ndarray) -> tuple[complex, SCBOperator | None]:
    """Express ``matrix`` as ``coeff · B`` with ``B`` a basis operator, or (0, None)."""
    if np.allclose(matrix, 0.0, atol=1e-12):
        return 0.0, None
    for op in ALL_SCB_OPERATORS:
        base = op.matrix
        # Find the scaling factor using the largest entry of the candidate.
        idx = np.unravel_index(np.argmax(np.abs(base)), base.shape)
        if abs(base[idx]) < 1e-12:
            continue
        coeff = matrix[idx] / base[idx]
        if abs(coeff) > 1e-12 and np.allclose(matrix, coeff * base, atol=1e-12):
            return complex(coeff), op
    raise OperatorError("matrix is not proportional to a Single Component Basis operator")


# Cayley table: (a, b) -> (coeff, op or None).  Derived from the matrices on
# first use rather than at import time: the 64 `_match_basis` searches were a
# measurable slice of `import repro`, and most sessions never touch them.
_PRODUCT_TABLE: dict[tuple[SCBOperator, SCBOperator], tuple[complex, SCBOperator | None]] | None = None


def _product_table() -> dict[tuple[SCBOperator, SCBOperator], tuple[complex, SCBOperator | None]]:
    global _PRODUCT_TABLE
    if _PRODUCT_TABLE is None:
        _PRODUCT_TABLE = {
            (a, b): _match_basis(a.matrix @ b.matrix)
            for a in ALL_SCB_OPERATORS
            for b in ALL_SCB_OPERATORS
        }
    return _PRODUCT_TABLE


def single_qubit_product(
    a: SCBOperator, b: SCBOperator
) -> tuple[complex, SCBOperator | None]:
    """Product ``a · b`` as ``(coefficient, operator)``; ``(0, None)`` if it vanishes.

    Every product of two operators of the Single Component Basis (plus Pauli
    and identity) is again proportional to a basis operator — this closure is
    what Table IV of the paper tabulates.
    """
    return _product_table()[(a, b)]


def cayley_table() -> dict[tuple[str, str], tuple[complex, str | None]]:
    """The full Cayley table keyed by operator labels (Table IV)."""
    return {
        (a.label, b.label): (coeff, op.label if op is not None else None)
        for (a, b), (coeff, op) in _product_table().items()
    }


def commutator(a: SCBOperator, b: SCBOperator) -> dict[SCBOperator, complex]:
    """``[a, b] = ab - ba`` expressed on the Single Component Basis.

    The result is returned as a dictionary ``{operator: coefficient}`` because
    a commutator of basis elements is not always proportional to a single
    basis element (e.g. ``[σ, σ†] = n - m = -Z``); the decomposition used here
    is onto ``{m, n, σ, σ†}`` which spans all 2×2 matrices.
    """
    return _decompose_2x2(a.matrix @ b.matrix - b.matrix @ a.matrix)


def anticommutator(a: SCBOperator, b: SCBOperator) -> dict[SCBOperator, complex]:
    """``{a, b} = ab + ba`` expressed on the Single Component Basis."""
    return _decompose_2x2(a.matrix @ b.matrix + b.matrix @ a.matrix)


def _decompose_2x2(matrix: np.ndarray) -> dict[SCBOperator, complex]:
    """Exact expansion of a 2×2 matrix on ``{m, n, σ, σ†}`` (Table II logic).

    ``m`` carries entry (0,0), ``n`` entry (1,1), ``σ`` entry (1,0) and ``σ†``
    entry (0,1), so the expansion is simply a relabelling of the matrix
    entries.
    """
    matrix = np.asarray(matrix, dtype=complex)
    out: dict[SCBOperator, complex] = {}
    entries = {
        SCBOperator.M: matrix[0, 0],
        SCBOperator.SIGMA_DAG: matrix[0, 1],
        SCBOperator.SIGMA: matrix[1, 0],
        SCBOperator.N: matrix[1, 1],
    }
    for op, value in entries.items():
        if abs(value) > 1e-12:
            out[op] = complex(value)
    return out


def simplify_to_single_operator(
    expansion: dict[SCBOperator, complex]
) -> tuple[complex, SCBOperator | None] | None:
    """If an expansion is proportional to a single basis operator, return it.

    Used when cross-checking the paper's Table V entries such as
    ``[σ, Z] = 2σ``; returns ``None`` when the expansion genuinely needs more
    than one basis element (e.g. ``{σ†, Y} = iI``, which is ``i·m + i·n``).
    """
    matrix = np.zeros((2, 2), dtype=complex)
    for op, coeff in expansion.items():
        matrix = matrix + coeff * op.matrix
    try:
        return _match_basis(matrix)
    except OperatorError:
        return None
