"""Fixtures for the telemetry suite: isolated tracing state per test."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import metrics


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    """Every test starts env-driven, disabled, with empty metric registries."""
    monkeypatch.delenv(telemetry.TRACE_ENV, raising=False)
    monkeypatch.delenv(telemetry.TRACE_DIR_ENV, raising=False)
    monkeypatch.delenv(telemetry.PROFILE_ENV, raising=False)
    monkeypatch.delenv(telemetry.PROFILE_DIR_ENV, raising=False)
    telemetry.reset()
    metrics.reset()
    telemetry.stop_profiler()
    yield
    telemetry.reset()
    metrics.reset()
    telemetry.stop_profiler()


@pytest.fixture
def traced(tmp_path, monkeypatch):
    """Enable tracing into the test's tmp dir.

    Set through the environment (not :func:`telemetry.configure`) so forked
    pool workers and subprocesses inherit it; returns the trace directory.
    """
    trace_dir = tmp_path / "traces"
    monkeypatch.setenv(telemetry.TRACE_ENV, "1")
    monkeypatch.setenv(telemetry.TRACE_DIR_ENV, str(trace_dir))
    return trace_dir
