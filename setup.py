"""Setup shim.

The metadata lives in ``pyproject.toml``; this file exists so that the legacy
(`setup.py develop`) editable-install path works on environments whose
setuptools/pip combination cannot build PEP 660 editable wheels offline
(no ``wheel`` package available).
"""

from setuptools import setup

setup()
