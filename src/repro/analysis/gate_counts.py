"""Gate-count and depth reports (the metrics of Section VI-A).

The paper compares strategies by the number of two-qubit gates, the number of
arbitrary rotations and the depth after transpilation to a native gate set.
:func:`gate_count_report` computes those metrics for a circuit, optionally
after expanding composite gates with the transpiler.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transpile import TranspileOptions, transpile


@dataclass(frozen=True)
class GateCountReport:
    """Resource metrics of a single circuit."""

    name: str
    num_qubits: int
    size: int
    depth: int
    two_qubit_depth: int
    two_qubit_gates: int
    multi_qubit_gates: int
    rotation_gates: int
    counts: dict

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.num_qubits} qubits, size {self.size}, depth {self.depth}, "
            f"2q-gates {self.two_qubit_gates}, 2q-depth {self.two_qubit_depth}, "
            f"rotations {self.rotation_gates}"
        )


def gate_count_report(
    circuit: QuantumCircuit,
    *,
    transpiled: bool = False,
    transpile_options: TranspileOptions | None = None,
) -> GateCountReport:
    """Compute the resource metrics of a circuit (optionally after transpilation)."""
    target = transpile(circuit, transpile_options) if transpiled else circuit
    return GateCountReport(
        name=target.name,
        num_qubits=target.num_qubits,
        size=target.size(),
        depth=target.depth(),
        two_qubit_depth=target.two_qubit_depth(),
        two_qubit_gates=target.num_two_qubit_gates(),
        multi_qubit_gates=target.num_multi_qubit_gates(),
        rotation_gates=target.num_rotation_gates(),
        counts=target.count_ops(),
    )


def compare_circuits(
    circuits: dict[str, QuantumCircuit],
    *,
    transpiled: bool = False,
    transpile_options: TranspileOptions | None = None,
) -> dict[str, GateCountReport]:
    """Gate-count reports for a dictionary of named circuits."""
    return {
        name: gate_count_report(
            circuit, transpiled=transpiled, transpile_options=transpile_options
        )
        for name, circuit in circuits.items()
    }


def format_comparison_table(reports: dict[str, GateCountReport]) -> str:
    """Human-readable comparison table (one row per circuit)."""
    header = f"{'circuit':<28}{'qubits':>8}{'size':>8}{'depth':>8}{'2q':>8}{'rot':>8}"
    lines = [header, "-" * len(header)]
    for name, report in reports.items():
        lines.append(
            f"{name:<28}{report.num_qubits:>8}{report.size:>8}{report.depth:>8}"
            f"{report.two_qubit_gates:>8}{report.rotation_gates:>8}"
        )
    return "\n".join(lines)
