"""Smoke test: every script in examples/ runs to completion.

Each example is executed in a subprocess (so a crash, hang or sys.exit in one
cannot poison the test process) with the repository's ``src`` on the path.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ directory should contain runnable scripts"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"{script.name} exited with {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
