"""Certification: faulted 16-point sweeps are bit-identical to clean serial runs.

Two stacks, same claim.  The pool certification injects a SIGKILLed worker
and shared-memory exhaustion under the resilient :class:`ProcessExecutor`;
the service certification runs a daemon plus two *subprocess* workers with a
SIGKILLed worker, a torn cache write and injected client disconnects.  In
both, the final results must match a fault-free serial run bit for bit, no
shared-memory segment may leak, and the resilience counters must show the
faults actually fired.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.service.client import ServiceClient
from repro.telemetry import metrics

from _chaos_helpers import (
    REPO_ROOT,
    assert_outcomes_identical,
    clean_serial,
    shm_segments,
    sweep_payloads,
)


def test_pool_chaos_certification(tmp_path, monkeypatch):
    from repro.runtime import ProcessExecutor

    payloads = sweep_payloads(repeats=2)  # 16 points
    assert len(payloads) == 16
    expected = clean_serial(payloads)
    before = shm_segments()
    state = tmp_path / "chaos-state"
    monkeypatch.setenv(
        "REPRO_FAULTS",
        f"state={state};seed=3;"
        "worker.execute:kill@once;"
        "shm.export:raise=ENOSPC@every=2",
    )
    executor = ProcessExecutor(2, point_timeout=10.0, max_restarts=2)
    outcomes = executor.map_specs(payloads)
    assert_outcomes_identical(outcomes, expected)
    # The SIGKILL really happened (fleet-wide marker claimed) and forced a
    # pool restart; nothing timed out; no /dev/shm segment survived.
    assert (state / "worker.execute.0.fired").exists()
    assert metrics.counter("resilience.retries") >= 1
    assert metrics.counter("resilience.timeouts") == 0
    assert shm_segments() <= before


def test_service_chaos_certification(make_daemon, tmp_path, monkeypatch):
    payloads = sweep_payloads(repeats=2)  # 16 points
    expected = clean_serial(payloads)
    metrics.reset()
    state = tmp_path / "svc-state"
    plan = (
        f"state={state};"
        "worker.execute:kill@once;"       # fires in exactly one fleet worker
        "cache.put.torn:raise=EIO@n=1;"   # tears the daemon's first cache write
        "protocol.send:raise=ConnectionResetError@n=2"  # per-process disconnect
    )
    monkeypatch.setenv("REPRO_FAULTS", plan)
    daemon = make_daemon(local_workers=0, chunk_size=2, lease_seconds=1.0)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "worker",
                "--socket", str(daemon.socket_path),
                "--id", f"chaos-{i}", "--poll", "0.05",
                "--max-idle", "3.0", "--reconnect", "2.0",
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        for i in range(2)
    ]
    try:
        client = ServiceClient(daemon.socket_path)
        ack = client.submit_payloads(payloads)
        status = client.wait(ack["job_id"], timeout=120, stall_timeout=30)
        assert status["state"] == "done"
        outcomes = client.result(ack["job_id"])
        assert_outcomes_identical(outcomes, expected)
        codes = [worker.wait(timeout=60) for worker in workers]
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=30)
    # One worker died by SIGKILL (its lease was reaped and the chunk re-run);
    # the survivor drained the queue and exited cleanly on idle.
    assert codes.count(-signal.SIGKILL) == 1, codes
    assert codes.count(0) == 1, codes
    assert (state / "worker.execute.0.fired").exists()
    # Test-process evidence: the torn cache write and the injected client
    # disconnect both fired here, and the client retried through the latter.
    assert metrics.counter("resilience.faults.cache.put.torn") == 1
    assert metrics.counter("resilience.faults.protocol.send") >= 1
    assert metrics.counter("resilience.retries") >= 1
    # The daemon's own health endpoint saw the same counters.
    health = client.health()
    assert health["healthy"]
    assert health["resilience"]["faults_injected"] >= 2
