"""E14 (extensions) — ablations of the design choices and Section VI-B variants.

Not a table of the paper, but the ablation studies DESIGN.md calls out plus the
Section VI-B compatibility claims implemented as extensions:

* multi-product formulas (MPF) on top of the direct Trotter circuits;
* fragment ordering / commutation grouping and its effect on the Trotter error;
* qDRIFT over direct fragments;
* QPE cost read-out of a HUBO problem (the Grover-Adaptive-Search origin of the
  direct strategy, Section V-A.1).
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.applications.hubo import HUBOProblem, evaluate_cost_by_qpe
from repro.core import (
    commuting_group_count,
    direct_fragments,
    mpf_error,
    mpf_one_norm,
    ordering_error_spread,
    qdrift_circuit,
    single_formula_error,
)
from repro.operators import Hamiltonian


def _mixed_hamiltonian() -> Hamiltonian:
    ham = Hamiltonian(3)
    ham.add_label("ZII", 0.4)
    ham.add_label("IZZ", 0.3)
    ham.add_label("Xsd", 0.5)
    ham.add_label("nsI", 0.7)
    return ham


def test_multi_product_formula_error_reduction(benchmark):
    ham = _mixed_hamiltonian()

    def sweep():
        rows = []
        baseline = single_formula_error(ham, 0.6, 2)
        rows.append(["single S2, 2 steps", f"{baseline:.3e}", "1.0"])
        for steps in ([1, 2], [1, 2, 3], [1, 2, 3, 4]):
            rows.append(
                [f"MPF {steps}", f"{mpf_error(ham, 0.6, steps):.3e}", f"{mpf_one_norm(steps):.2f}"]
            )
        return rows

    rows = benchmark(sweep)
    print_table(
        "Section VI-B — multi-product formula on direct Trotter circuits (t = 0.6)",
        ["formula", "error vs exp(-itH)", "coefficient 1-norm"],
        rows,
    )
    errors = [float(row[1]) for row in rows]
    assert errors[1] < errors[0] / 5
    assert errors[2] < errors[1] / 5


def test_ordering_and_grouping(benchmark):
    ham = _mixed_hamiltonian()

    def run():
        groups = commuting_group_count(ham)
        low, high = ordering_error_spread(ham, 0.6, num_orderings=10, rng=0)
        return groups, low, high

    groups, low, high = benchmark(run)
    print(f"\nFragment ordering study: {ham.num_terms} fragments collapse into {groups} "
          f"mutually commuting groups; single-step error over random orderings "
          f"ranges from {low:.3e} to {high:.3e}")
    assert groups <= ham.num_terms
    assert low <= high


def test_qdrift_over_direct_fragments(benchmark):
    ham = _mixed_hamiltonian()
    from scipy.linalg import expm

    from repro.circuits import circuit_unitary
    from repro.utils.linalg import spectral_norm_diff

    exact = expm(-1j * 0.3 * ham.matrix())

    def sweep():
        rows = []
        for samples in (25, 100, 400):
            circuit = qdrift_circuit(direct_fragments(ham), 3, 0.3, num_samples=samples, rng=7)
            rows.append([samples, f"{spectral_norm_diff(circuit_unitary(circuit), exact):.3e}",
                         circuit.num_rotation_gates()])
        return rows

    rows = benchmark(sweep)
    print_table(
        "Section VI-B — qDRIFT random compiler over direct fragments (t = 0.3)",
        ["samples", "error", "rotations"],
        rows,
    )
    assert float(rows[-1][1]) < float(rows[0][1])


def test_hubo_cost_readout_by_qpe(benchmark):
    """The Section V-A.1 origin: reading HUBO costs off a phase register."""
    problem = HUBOProblem(3, {(0,): 1.0, (1,): 2.0, (0, 2): 3.0}, formalism="boolean")

    def readout():
        rows = []
        for index in range(8):
            bits = [int(b) for b in format(index, "03b")]
            cost, probability = evaluate_cost_by_qpe(problem, bits, 4)
            rows.append([format(index, "03b"), problem.evaluate(bits), round(cost, 6),
                         f"{probability:.3f}"])
        return rows

    rows = benchmark(readout)
    print_table(
        "HUBO cost read-out by QPE (direct phase separator, 4-bit register)",
        ["assignment", "classical cost", "QPE cost", "peak probability"],
        rows,
    )
    for _, classical, quantum, probability in rows:
        assert abs(classical - quantum) < 1e-6
        assert float(probability) > 0.99
