"""Observability end to end: trace a parallel sweep and read the report.

1. switch tracing on for this process *and* its pool workers — the env
   variables travel into children under any start method;
2. run a 2-worker sweep: every process appends spans to its own JSONL
   file under the trace directory, so writers never contend;
3. read the per-point phase split straight off the results table —
   ``RunRecord.timings`` is always on, no tracing required;
4. merge the trace files and render the per-phase/per-worker report —
   the same view ``python -m repro.telemetry report <dir>`` prints;
5. check the trace against the packaged JSON Schema and fold it into
   flamegraph stacks (``flamegraph.pl``-compatible).

Run with ``python examples/traced_sweep.py``.
"""

import os
import tempfile
from pathlib import Path

import repro
from repro import telemetry
from repro.runtime import Session, SweepSpec
from repro.telemetry.report import flame_stacks, load_trace_dir, render_report
from repro.telemetry.schema import validate_spans


def main() -> None:
    # ------------------------------------------------------------------ 1.
    trace_dir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    os.environ[telemetry.TRACE_ENV] = "1"        # inherited by pool workers
    os.environ[telemetry.TRACE_DIR_ENV] = str(trace_dir)
    telemetry.configure(enabled=True, directory=trace_dir)

    problem = repro.SimulationProblem.from_labels(
        6,
        {"nsdIII": 0.8, "IZZIII": 0.3, "IIXsdI": 0.5, "IIImns": 0.2},
        time=0.3,
        name="traced-demo",
    )
    spec = SweepSpec(
        problem=problem,
        strategies=("direct", "pauli"),
        steps=(1, 2, 4, 8),
        backend="statevector",
        name="traced-grid",
    )

    # ------------------------------------------------------------------ 2.
    # Session opens the root ``session.execute`` span itself; every worker
    # span parents onto it through the shipped (trace_id, span_id) pair.
    results = Session(cache=False, executor=2).sweep(spec)
    print(f"swept {spec.name}: {results.summary()}")

    # ------------------------------------------------------------------ 3.
    print("\nper-point phase split (always on, even with tracing off):")
    print(results.table())

    # ------------------------------------------------------------------ 4.
    spans = load_trace_dir(trace_dir)
    files = sorted(p.name for p in trace_dir.glob("trace-*.jsonl"))
    print(f"\n{len(spans)} spans across {len(files)} per-process trace files:")
    for name in files:
        print(f"  {name}")
    print()
    print(render_report(spans))

    # ------------------------------------------------------------------ 5.
    validate_spans(spans)
    print(f"all {len(spans)} spans validate against the packaged schema")
    stacks = flame_stacks(spans)
    print(f"{len(stacks)} folded stacks — pipe to flamegraph.pl via:")
    print(f"  python -m repro.telemetry report {trace_dir} --flame")
    print(f"  python -m repro.telemetry validate {trace_dir}")

    telemetry.reset()


if __name__ == "__main__":
    main()
