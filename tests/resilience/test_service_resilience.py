"""Service-layer resilience: reconnects, stall detection, claim faults, health."""

from __future__ import annotations

import json
import socket as socketlib
import threading
import time

import pytest

from repro.exceptions import ExecutionError
from repro.resilience import configure_faults
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceConnectionError, connect
from repro.service.worker import run_worker
from repro.telemetry import metrics

from _chaos_helpers import sweep_payloads


def test_client_request_survives_injected_disconnect(make_daemon):
    daemon = make_daemon()
    client = ServiceClient(daemon.socket_path)
    configure_faults("protocol.send:raise=ConnectionResetError@n=1")
    assert client.ping()["ok"]
    assert metrics.counter("resilience.retries") == 1
    assert metrics.counter("resilience.faults_injected") == 1


def test_client_without_retry_policy_fails_fast(make_daemon):
    daemon = make_daemon()
    client = ServiceClient(daemon.socket_path, retry=None)
    configure_faults("protocol.send:raise=BrokenPipeError@n=1")
    with pytest.raises(ServiceConnectionError):
        client.ping()
    assert client.ping()["ok"]


def test_connect_rides_out_the_startup_race(tmp_path):
    socket_path = tmp_path / "late.sock"
    server = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)

    def bind_later():
        time.sleep(0.3)
        server.bind(str(socket_path))
        server.listen(1)

    thread = threading.Thread(target=bind_later, daemon=True)
    thread.start()
    try:
        # Single-shot semantics are preserved: no window, immediate failure.
        with pytest.raises(ServiceConnectionError):
            connect(socket_path, retry_window=0.0)
        sock = connect(socket_path, retry_window=10.0)
        sock.close()
    finally:
        thread.join(timeout=5.0)
        server.close()


def test_wait_trips_only_on_a_true_stall(make_daemon):
    daemon = make_daemon(local_workers=0)  # nobody will ever drain the queue
    client = ServiceClient(daemon.socket_path)
    ack = client.submit_payloads(sweep_payloads(strategies=("direct",), steps=(1,)))
    with pytest.raises(ExecutionError, match="no progress"):
        client.wait(ack["job_id"], stall_timeout=0.3)


def test_worker_rides_out_claim_rejection(make_daemon):
    daemon = make_daemon(local_workers=0, chunk_size=2)
    client = ServiceClient(daemon.socket_path)
    configure_faults("daemon.claim:raise=OSError@n=1")
    payloads = sweep_payloads(strategies=("direct",), steps=(1, 2))
    ack = client.submit_payloads(payloads)
    exit_code = {}

    def drain():
        exit_code["value"] = run_worker(
            daemon.socket_path, worker_id="claim-chaos",
            poll_interval=0.02, max_idle=1.0,
        )

    thread = threading.Thread(target=drain, daemon=True)
    thread.start()
    status = client.wait(ack["job_id"], timeout=60)
    assert status["state"] == "done"
    assert len(client.result(ack["job_id"])) == len(payloads)
    thread.join(timeout=30)
    assert exit_code["value"] == 0
    assert metrics.counter("resilience.faults_injected") >= 1


def test_health_reports_and_detects_degradation(make_daemon, tmp_path):
    daemon = make_daemon()
    client = ServiceClient(daemon.socket_path)
    health = client.health()
    assert health["healthy"]
    assert health["cache"]["writable"]
    assert health["reaper"]["ok"]
    assert set(health["resilience"]) >= {
        "retries", "fallbacks", "timeouts", "faults_injected",
    }
    assert "resilience" in client.stats()
    # Shadow the cache directory with a plain file: the writability probe
    # must fail and flip the verdict, with the error surfaced.
    blocker = tmp_path / "blocker"
    blocker.write_text("in the way")
    daemon.cache.directory = blocker / "nested"
    degraded = client.health()
    assert not degraded["healthy"]
    assert not degraded["cache"]["writable"]
    assert degraded["cache"]["error"]


def test_cli_health_subcommand(make_daemon, capsys):
    from repro.service.cli import main

    daemon = make_daemon()
    assert main(["health", "--socket", str(daemon.socket_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["healthy"]
    assert main(["health", "--socket", str(daemon.socket_path)]) == 0
    text = capsys.readouterr().out
    assert "healthy" in text and "resilience" in text
