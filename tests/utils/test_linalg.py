"""Unit tests for the linear-algebra helpers."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.utils.linalg import (
    dagger,
    hilbert_schmidt_inner,
    is_hermitian,
    is_identity,
    is_unitary,
    kron_all,
    matrices_close,
    operator_norm,
    phase_aligned_distance,
    projector,
    random_statevector,
    spectral_norm_diff,
)


class TestPredicates:
    def test_is_unitary_true(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert is_unitary(h)

    def test_is_unitary_false(self):
        assert not is_unitary(np.array([[1, 1], [0, 1]]))

    def test_is_unitary_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_is_hermitian_true(self):
        assert is_hermitian(np.array([[1, 1j], [-1j, 2]]))

    def test_is_hermitian_false(self):
        assert not is_hermitian(np.array([[0, 1], [0, 0]]))

    def test_is_identity(self):
        assert is_identity(np.eye(4))
        assert not is_identity(np.diag([1, 1, 1, -1]))

    def test_matrices_close_shape_mismatch(self):
        assert not matrices_close(np.eye(2), np.eye(4))


class TestNorms:
    def test_operator_norm_diagonal(self):
        assert operator_norm(np.diag([3.0, -5.0])) == pytest.approx(5.0)

    def test_spectral_norm_diff_zero(self):
        a = np.eye(3)
        assert spectral_norm_diff(a, a) == pytest.approx(0.0)

    def test_phase_aligned_distance_pure_phase(self):
        u = np.diag([1, 1j])
        assert phase_aligned_distance(u, np.exp(1j * 0.7) * u) == pytest.approx(0.0, abs=1e-10)

    def test_phase_aligned_distance_detects_difference(self):
        assert phase_aligned_distance(np.eye(2), np.diag([1, -1])) > 0.5

    def test_hilbert_schmidt(self):
        assert hilbert_schmidt_inner(np.eye(2), np.eye(2)) == pytest.approx(2.0)


class TestConstructors:
    def test_dagger(self):
        m = np.array([[1, 2j], [3, 4]])
        np.testing.assert_allclose(dagger(m), m.conj().T)

    def test_kron_all_order(self):
        x = np.array([[0, 1], [1, 0]])
        z = np.diag([1, -1])
        np.testing.assert_allclose(kron_all([x, z]), np.kron(x, z))

    def test_kron_all_empty(self):
        with pytest.raises(ReproError):
            kron_all([])

    def test_random_statevector_normalised(self, rng):
        vec = random_statevector(5, rng)
        assert vec.shape == (32,)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_random_statevector_negative(self):
        with pytest.raises(ReproError):
            random_statevector(-1)

    def test_projector(self):
        proj = projector([1, 3], 4)
        np.testing.assert_allclose(np.diag(proj), [0, 1, 0, 1])

    def test_projector_out_of_range(self):
        with pytest.raises(ReproError):
            projector([5], 4)
