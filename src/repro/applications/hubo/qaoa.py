"""QAOA driver built on the phase-separator circuits.

The Quantum Approximate Optimization Algorithm is one of the routines the
paper lists as a consumer of Hamiltonian simulation; this module provides a
small statevector-based driver so the examples and benchmarks can run the
direct and usual phase separators inside an actual optimisation loop and check
that both give identical energies (the cost operator is diagonal, so the two
strategies produce *exactly* the same state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.applications.hubo.problem import HUBOProblem
from repro.circuits.pauli_kernels import apply_permutation_rotation
from repro.exceptions import ProblemError


@dataclass
class QAOAResult:
    """Outcome of a QAOA optimisation run."""

    optimal_value: float
    optimal_parameters: np.ndarray
    expectation_history: list[float]
    best_bitstring: str
    best_cost: float
    num_layers: int
    strategy: str


def qaoa_state(
    problem: HUBOProblem,
    gammas: np.ndarray,
    betas: np.ndarray,
    *,
    energies: np.ndarray | None = None,
) -> np.ndarray:
    """Matrix-free QAOA statevector — no circuit is ever built.

    The cost operator is diagonal, so each phase-separator layer is the
    element-wise phase ``e^{-iγ·E}`` over the precomputed energy vector, and
    each mixer ``RX(2β)`` qubit is one permutation kernel
    (:func:`~repro.circuits.pauli_kernels.apply_permutation_rotation`).  This
    matches the circuit of :func:`~repro.applications.hubo.circuits.qaoa_circuit`
    exactly (both strategies included — they build the same diagonal), and an
    optimiser loop reuses ``energies`` across every evaluation.
    """
    n = problem.num_variables
    if len(gammas) != len(betas):
        raise ProblemError("gammas and betas must have the same length")
    if energies is None:
        energies = problem.energy_vector()
    psi = np.full(1 << n, 1.0 / np.sqrt(1 << n), dtype=complex)
    for gamma, beta in zip(gammas, betas):
        psi *= np.exp(-1j * float(gamma) * energies)
        for q in range(n):
            apply_permutation_rotation(psi, 1 << (n - 1 - q), float(beta))
    return psi


def qaoa_expectation(
    problem: HUBOProblem,
    gammas: np.ndarray,
    betas: np.ndarray,
    *,
    strategy: str = "direct",
    energies: np.ndarray | None = None,
) -> float:
    """⟨ψ(γ, β)| H_P |ψ(γ, β)⟩ evaluated exactly, via the kernel state.

    ``strategy`` is kept (and still validated) for API compatibility: the
    cost operator is diagonal, so the direct and usual separators produce the
    same state and the expectation is strategy-independent.
    """
    if strategy not in ("direct", "usual"):
        raise ProblemError(f"unknown strategy {strategy!r}")
    if energies is None:
        energies = problem.energy_vector()
    psi = qaoa_state(problem, gammas, betas, energies=energies)
    return float(np.real(np.dot(np.abs(psi) ** 2, energies)))


def run_qaoa(
    problem: HUBOProblem,
    num_layers: int = 1,
    *,
    strategy: str = "direct",
    rng: np.random.Generator | int | None = None,
    maxiter: int = 150,
    session=None,
) -> QAOAResult:
    """Optimise the QAOA parameters with COBYLA and report the best sample.

    With a :class:`~repro.runtime.session.Session` and an explicit *integer*
    seed, the whole optimisation is content-addressed in the session's result
    cache, keyed on the problem's canonical form and every optimiser setting
    — a repeated HUBO study replays from disk.  An unseeded run (``rng=None``
    or a live generator) is never cached: freezing one random COBYLA start
    under a deterministic key would replay that single draw forever.
    """
    if problem.num_variables > 16:
        raise ProblemError("the statevector QAOA driver is limited to 16 variables")
    if session is not None and isinstance(rng, (int, np.integer)):
        payload = {
            "problem": problem.to_dict(),
            "num_layers": int(num_layers),
            "strategy": strategy,
            "maxiter": int(maxiter),
            "rng": int(rng),
        }
        fields = session.call(
            "run_qaoa",
            payload,
            lambda: _qaoa_result_fields(
                run_qaoa(
                    problem, num_layers, strategy=strategy, rng=rng, maxiter=maxiter
                )
            ),
        )
        return QAOAResult(
            optimal_value=fields["optimal_value"],
            optimal_parameters=np.asarray(fields["optimal_parameters"], dtype=float),
            expectation_history=list(fields["expectation_history"]),
            best_bitstring=fields["best_bitstring"],
            best_cost=fields["best_cost"],
            num_layers=fields["num_layers"],
            strategy=fields["strategy"],
        )
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    history: list[float] = []
    energies = problem.energy_vector()  # shared across every COBYLA evaluation

    def objective(params: np.ndarray) -> float:
        gammas = params[:num_layers]
        betas = params[num_layers:]
        value = qaoa_expectation(
            problem, gammas, betas, strategy=strategy, energies=energies
        )
        history.append(value)
        return value

    x0 = rng.uniform(0.0, np.pi / 4.0, size=2 * num_layers)
    result = minimize(objective, x0, method="COBYLA", options={"maxiter": maxiter})

    gammas = result.x[:num_layers]
    betas = result.x[num_layers:]
    probs = np.abs(qaoa_state(problem, gammas, betas, energies=energies)) ** 2
    best_index = int(np.argmin(np.where(probs > 1e-12, energies, np.inf)))
    # Most probable low-energy assignment: weight energies by sampling probability.
    sampled_best = int(np.argmax(probs * (energies <= energies[best_index] + 1e-9)))

    from repro.utils.bits import int_to_bitstring

    return QAOAResult(
        optimal_value=float(result.fun),
        optimal_parameters=result.x,
        expectation_history=history,
        best_bitstring=int_to_bitstring(sampled_best, problem.num_variables),
        best_cost=float(energies[sampled_best]),
        num_layers=num_layers,
        strategy=strategy,
    )


def _qaoa_result_fields(result: QAOAResult) -> dict:
    """A :class:`QAOAResult` as a JSON-able dict (the session-cache payload)."""
    return {
        "optimal_value": float(result.optimal_value),
        "optimal_parameters": [float(x) for x in result.optimal_parameters],
        "expectation_history": [float(x) for x in result.expectation_history],
        "best_bitstring": result.best_bitstring,
        "best_cost": float(result.best_cost),
        "num_layers": int(result.num_layers),
        "strategy": result.strategy,
    }


def approximation_ratio(problem: HUBOProblem, expectation: float) -> float:
    """(E_max - ⟨H⟩) / (E_max - E_min): 1 means the optimum is reached."""
    energies = problem.energy_vector()
    e_min, e_max = float(energies.min()), float(energies.max())
    if abs(e_max - e_min) < 1e-15:
        return 1.0
    return (e_max - expectation) / (e_max - e_min)
