"""E7a — Section V-C / Eq. 23: finite-difference decompositions and their scaling.

Regenerates the Section V-C results: the SCB decomposition of the 1-D/2-D/3-D
finite-difference matrices reconstructs them exactly with a logarithmic number
of terms, and the two-qubit cost of one Hamiltonian-simulation step grows
polynomially in log N (Eq. 23: ``(log²N + log N)/2`` controls) instead of with
the matrix size.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.applications.pde import (
    decomposition_reconstruction_error,
    double_layer_grid,
    fd_measured_two_qubit_count,
    fd_term_count,
    fd_two_qubit_model,
    laplacian_1d_hamiltonian,
    line_grid,
    two_line_grid,
)


def _scaling_rows():
    rows = []
    for q in range(1, 7):
        ham = laplacian_1d_hamiltonian(q)
        # Eq. 23 sums the sizes of the successive gates (each new carry gate
        # involves one qubit more than the previous one): Σ_i i = (log²N+logN)/2.
        total_gate_size = sum(term.order for term in ham.terms)
        rows.append(
            [1 << q, q, ham.num_terms, fd_term_count(q), total_gate_size,
             fd_two_qubit_model(q), fd_measured_two_qubit_count(q) if q <= 5 else "-"]
        )
    return rows


def test_eq23_scaling(benchmark):
    rows = benchmark(_scaling_rows)
    print_table(
        "Eq. 23 — 1-D Laplacian decomposition scaling with the matrix size N",
        ["N", "log2 N", "SCB terms", "term model", "Σ gate sizes",
         "(log²N+logN)/2", "measured 2q (transpiled)"],
        rows,
    )
    for row in rows:
        n, q, terms, model_terms, total_gate_size, eq23, _ = row
        assert terms == model_terms == q + 1
        # The summed gate size reproduces Eq. 23 exactly.
        assert total_gate_size == eq23
    # Logarithmic term count: doubling N adds exactly one term.
    term_counts = [row[2] for row in rows]
    assert all(b - a == 1 for a, b in zip(term_counts, term_counts[1:]))


def test_reconstruction_every_dimension(benchmark):
    def sweep():
        rows = []
        for label, grid in [
            ("1D, 8 nodes", line_grid(8)),
            ("1D, 32 nodes", line_grid(32)),
            ("2D, 2x8 nodes", two_line_grid(8)),
            ("3D, 2x2x8 nodes", double_layer_grid(8)),
        ]:
            rows.append([label, f"{decomposition_reconstruction_error(grid):.1e}"])
        return rows

    rows = benchmark(sweep)
    print_table("Section V-C — FD matrix reconstruction from SCB terms", ["grid", "max error"], rows)
    for _, err in rows:
        assert float(err) < 1e-10


def test_poisson_evolution_and_encoding_quality(benchmark):
    """Hamiltonian simulation and block encoding built from the same decomposition."""
    from repro.analysis import trotter_error_norm
    from repro.applications.pde import (
        laplacian_matrix,
        poisson_block_encoding,
        poisson_evolution_circuit,
        poisson_operator,
    )

    grid = line_grid(8)
    ham = poisson_operator(grid)

    def build():
        return (
            poisson_evolution_circuit(grid, 0.2, steps=2, order=2),
            poisson_block_encoding(line_grid(4)),
        )

    evolution, encoding = benchmark(build)
    evolution_error = trotter_error_norm(ham, evolution, 0.2)
    encoding_error = encoding.verification_error(laplacian_matrix(line_grid(4)).toarray())
    print(f"\n1-D Poisson operator: evolution error (2 steps, order 2) = {evolution_error:.2e}, "
          f"block-encoding error = {encoding_error:.2e}, "
          f"BE ancillas = {encoding.num_ancillas}, scale λ = {encoding.scale:.2f}")
    assert evolution_error < 5e-3
    assert encoding_error < 1e-8
