"""Transpilation of composite gates into one- and two-qubit gates — and the
opposite direction: :func:`fuse_gates` merges runs of small gates into single
multi-qubit :class:`~repro.circuits.gate.MatrixGate`\\ s for fast simulation.

The paper compares strategies by the number of two-qubit gates, the number of
arbitrary-rotation gates and the depth after transpilation to a native gate
set (Section VI-A).  :func:`transpile` expands every composite
(multi-controlled) gate of a circuit into one- and two-qubit gates so those
metrics can be read directly off the result.

Two expansion modes are provided for multi-controlled gates:

* ``"noancilla"`` — exact recursive decompositions (polynomial blow-up, no
  extra qubits);
* ``"vchain"`` — V-chain of clean ancilla qubits appended to the register,
  linear two-qubit cost (the regime of the paper's ``∝192·n`` model).

Gate fusion is the execution-side optimization: a statevector update costs one
``tensordot`` per instruction, so collapsing ``g`` adjacent gates confined to
``k ≤ fusion_max_qubits`` qubits into one ``2^k × 2^k`` matrix divides the
pass count by ``g`` at a small dense-matmul premium.  It is exposed through
``CompileOptions.optimize_level`` in the compile pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import (
    ccp_decomposition,
    ccx_decomposition,
    ccz_decomposition,
    controlled_unitary_abc,
    cswap_decomposition,
    mc_rotation_decomposition,
    mcp_decomposition,
    mcx_decomposition,
    mcx_vchain,
)
from repro.circuits.gate import (
    ControlledGate,
    Instruction,
    MatrixGate,
    StandardGate,
    UnitaryGate,
)
from repro.exceptions import DecompositionError


@dataclass
class TranspileOptions:
    """Options controlling :func:`transpile`.

    Attributes
    ----------
    mcx_mode:
        ``"noancilla"`` or ``"vchain"``.
    expand_two_qubit:
        When True, two-qubit controlled standard gates (``cx`` excepted) are
        further expanded into ``{1-qubit, CX}`` via the ABC decomposition,
        matching a QPU whose only entangling gate is CX.
    keep_cp:
        When ``expand_two_qubit`` is True, keep ``cp`` gates native (the paper
        discusses gate sets both with and without a native controlled-phase).
    """

    mcx_mode: str = "noancilla"
    expand_two_qubit: bool = False
    keep_cp: bool = True
    extra: dict = field(default_factory=dict)


def _expand_standard_three_qubit(instr: Instruction, num_qubits: int) -> QuantumCircuit:
    gate = instr.gate
    q = instr.qubits
    if gate.name == "ccx":
        return ccx_decomposition(q[0], q[1], q[2], num_qubits)
    if gate.name == "ccz":
        return ccz_decomposition(q[0], q[1], q[2], num_qubits)
    if gate.name == "ccp":
        return ccp_decomposition(gate.params[0], q[0], q[1], q[2], num_qubits)
    if gate.name == "cswap":
        return cswap_decomposition(q[0], q[1], q[2], num_qubits)
    raise DecompositionError(f"no decomposition registered for gate {gate.name!r}")


def _expand_controlled(
    instr: Instruction, num_qubits: int, options: TranspileOptions, ancillas: list[int]
) -> QuantumCircuit:
    gate = instr.gate
    assert isinstance(gate, ControlledGate)
    controls = list(instr.qubits[: gate.num_ctrl])
    targets = list(instr.qubits[gate.num_ctrl:])
    base = gate.base
    ctrl_state = gate.ctrl_state

    if base.num_qubits != 1:
        raise DecompositionError(
            f"cannot transpile a controlled {base.num_qubits}-qubit gate "
            f"({gate.name!r}); decompose the base gate into a circuit first"
        )
    target = targets[0]

    if isinstance(base, StandardGate) and base.name == "x":
        if options.mcx_mode == "vchain" and len(controls) > 2:
            return mcx_vchain(controls, target, ancillas[: len(controls) - 2], num_qubits, ctrl_state)
        return mcx_decomposition(controls, target, num_qubits, ctrl_state)
    if isinstance(base, StandardGate) and base.name == "z":
        return mcp_decomposition(math.pi, controls, target, num_qubits, ctrl_state)
    if isinstance(base, StandardGate) and base.name == "p":
        return mcp_decomposition(base.params[0], controls, target, num_qubits, ctrl_state)
    if isinstance(base, StandardGate) and base.name in {"rx", "ry", "rz"}:
        return mc_rotation_decomposition(
            base.name[-1], base.params[0], controls, target, num_qubits, ctrl_state
        )
    if isinstance(base, StandardGate) and base.name == "gphase":
        # A controlled global phase is a multi-controlled phase on the controls
        # only (the nominal target qubit is untouched).
        from repro.circuits.decompositions import _apply_ctrl_state_flips

        qc = QuantumCircuit(num_qubits, "cphase")
        flipped = _apply_ctrl_state_flips(qc, controls, ctrl_state)
        if len(controls) == 1:
            qc.p(base.params[0], controls[0])
        else:
            qc.compose(
                mcp_decomposition(base.params[0], controls[:-1], controls[-1], num_qubits)
            )
        for q in flipped:
            qc.x(q)
        return qc
    # Generic single-qubit base gate: single control -> ABC decomposition,
    # multiple controls -> recurse through a multi-controlled rotation-free path.
    matrix = base.matrix()
    if len(controls) == 1:
        qc = QuantumCircuit(num_qubits, f"c-{base.name}")
        flip = ctrl_state is not None and ctrl_state == 0
        if flip:
            qc.x(controls[0])
        qc.compose(controlled_unitary_abc(matrix, controls[0], target, num_qubits))
        if flip:
            qc.x(controls[0])
        return qc
    # Multi-controlled arbitrary U: V = sqrt(U) recursion (Barenco Lemma 7.5).
    return _mcu_recursive(matrix, controls, target, num_qubits, ctrl_state, base.name)


def _mcu_recursive(
    matrix, controls: list[int], target: int, num_qubits: int, ctrl_state: int | None, label: str
) -> QuantumCircuit:
    import numpy as np
    from scipy.linalg import sqrtm

    from repro.circuits.decompositions import _apply_ctrl_state_flips

    qc = QuantumCircuit(num_qubits, f"mc-{label}")
    flipped = _apply_ctrl_state_flips(qc, controls, ctrl_state)

    def recurse(mat, ctrls: list[int]) -> None:
        if len(ctrls) == 1:
            qc.compose(controlled_unitary_abc(mat, ctrls[0], target, num_qubits))
            return
        v = np.asarray(sqrtm(mat), dtype=complex)
        last = ctrls[-1]
        rest = ctrls[:-1]
        qc.compose(controlled_unitary_abc(v, last, target, num_qubits))
        qc.compose(mcx_decomposition(rest, last, num_qubits))
        qc.compose(controlled_unitary_abc(v.conj().T, last, target, num_qubits))
        qc.compose(mcx_decomposition(rest, last, num_qubits))
        recurse(v, rest)

    recurse(np.asarray(matrix, dtype=complex), list(controls))
    for q in flipped:
        qc.x(q)
    return qc


def _count_needed_ancillas(circuit: QuantumCircuit) -> int:
    needed = 0
    for instr in circuit:
        gate = instr.gate
        if isinstance(gate, ControlledGate) and isinstance(gate.base, StandardGate):
            if gate.base.name == "x" and gate.num_ctrl > 2:
                needed = max(needed, gate.num_ctrl - 2)
    return needed


def transpile(circuit: QuantumCircuit, options: TranspileOptions | None = None) -> QuantumCircuit:
    """Expand every composite gate of ``circuit`` into 1- and 2-qubit gates."""
    options = options or TranspileOptions()
    num_ancillas = 0
    if options.mcx_mode == "vchain":
        num_ancillas = _count_needed_ancillas(circuit)
    num_qubits = circuit.num_qubits + num_ancillas
    ancillas = list(range(circuit.num_qubits, num_qubits))

    out = QuantumCircuit(num_qubits, f"{circuit.name}_transpiled")
    out.global_phase = circuit.global_phase
    for instr in circuit:
        gate = instr.gate
        if isinstance(gate, ControlledGate):
            out.compose(_expand_controlled(instr, num_qubits, options, ancillas),
                        qubits=range(num_qubits))
        elif isinstance(gate, StandardGate) and gate.num_qubits >= 3:
            out.compose(_expand_standard_three_qubit(instr, num_qubits), qubits=range(num_qubits))
        elif isinstance(gate, UnitaryGate) and gate.num_qubits >= 3:
            raise DecompositionError(
                "cannot transpile a raw multi-qubit UnitaryGate; provide a circuit definition"
            )
        else:
            out.append(gate, instr.qubits)

    if options.expand_two_qubit:
        out = _expand_two_qubit_layer(out, options)
    return out


def _expand_two_qubit_layer(circuit: QuantumCircuit, options: TranspileOptions) -> QuantumCircuit:
    """Rewrite controlled two-qubit standard gates over the {1q, CX} basis."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    out.global_phase = circuit.global_phase
    for instr in circuit:
        gate = instr.gate
        name = gate.name
        if len(instr.qubits) != 2 or name in {"cx"}:
            out.append(gate, instr.qubits)
            continue
        if name == "cp" and options.keep_cp:
            out.append(gate, instr.qubits)
            continue
        if isinstance(gate, StandardGate) and name in {"cz", "cy", "ch", "cp", "crx", "cry", "crz"}:
            control, target = instr.qubits
            if name == "cz":
                out.h(target)
                out.cx(control, target)
                out.h(target)
            elif name == "cy":
                out.sdg(target)
                out.cx(control, target)
                out.s(target)
            elif name == "cp":
                theta = gate.params[0]
                out.p(theta / 2.0, control)
                out.cx(control, target)
                out.p(-theta / 2.0, target)
                out.cx(control, target)
                out.p(theta / 2.0, target)
            elif name == "crz":
                theta = gate.params[0]
                out.rz(theta / 2.0, target)
                out.cx(control, target)
                out.rz(-theta / 2.0, target)
                out.cx(control, target)
            elif name in {"crx", "cry", "ch"}:
                matrix = StandardGate(name[1:], getattr(gate, "params", ())).matrix() \
                    if name != "ch" else StandardGate("h").matrix()
                out.compose(
                    controlled_unitary_abc(matrix, control, target, circuit.num_qubits)
                )
            continue
        if isinstance(gate, StandardGate) and name == "swap":
            a, b = instr.qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
            continue
        if isinstance(gate, StandardGate) and name in {"rzz", "rxx", "ryy"}:
            a, b = instr.qubits
            theta = gate.params[0]
            if name == "rxx":
                out.h(a)
                out.h(b)
            elif name == "ryy":
                out.sdg(a)
                out.h(a)
                out.sdg(b)
                out.h(b)
            out.cx(a, b)
            out.rz(theta, b)
            out.cx(a, b)
            if name == "rxx":
                out.h(a)
                out.h(b)
            elif name == "ryy":
                out.h(a)
                out.s(a)
                out.h(b)
                out.s(b)
            continue
        out.append(gate, instr.qubits)
    return out


# --------------------------------------------------------------------- fusion


@dataclass(frozen=True)
class FusionReport:
    """What :func:`fuse_gates` did to a circuit."""

    gates_before: int
    gates_after: int
    fused_blocks: int
    widest_block: int

    @property
    def compression(self) -> float:
        """Instruction-count ratio before/after (≥ 1; higher is better)."""
        return self.gates_before / max(self.gates_after, 1)


class _FusionBlock:
    """A contiguous (reorder-safe) run of gates confined to few qubits."""

    __slots__ = ("qubits", "instructions", "mergeable")

    def __init__(self, instr: Instruction, mergeable: bool):
        self.qubits = set(instr.qubits)
        self.instructions = [instr]
        self.mergeable = mergeable


def _block_matrix(block: _FusionBlock, qubits: tuple[int, ...]) -> np.ndarray:
    """Dense unitary of a block on its sorted qubit support (MSB-first)."""
    from repro.circuits.statevector import apply_matrix

    local = {q: i for i, q in enumerate(qubits)}
    k = len(qubits)
    dim = 1 << k
    tensor = np.eye(dim, dtype=np.complex128).reshape((2,) * k + (dim,))
    for instr in block.instructions:
        tensor = apply_matrix(
            tensor, instr.gate.matrix(), tuple(local[q] for q in instr.qubits)
        )
    return tensor.reshape(dim, dim)


def fuse_gates(
    circuit: QuantumCircuit,
    *,
    max_fused_qubits: int = 4,
    label: str = "fused",
) -> QuantumCircuit:
    """Greedily merge adjacent gates into multi-qubit :class:`MatrixGate`\\ s.

    Scans the circuit once, growing *blocks* of instructions whose combined
    qubit support stays within ``max_fused_qubits``.  An instruction may also
    merge into an earlier still-open block when every block opened in between
    acts on disjoint qubits (such gates commute, so the reordering is exact).
    Blocks that end up with a single instruction are emitted unchanged, so a
    circuit of wide composite gates passes through untouched.

    The result implements exactly the same unitary (global phase included) —
    property-tested against :func:`~repro.circuits.unitary.circuit_unitary`
    on random circuits — but with far fewer instructions, which is what the
    ``statevector`` and ``sparse`` execution backends feed on.
    """
    if max_fused_qubits < 1:
        raise DecompositionError("max_fused_qubits must be at least 1")
    blocks: list[_FusionBlock] = []
    for instr in circuit:
        targets = set(instr.qubits)
        mergeable = len(targets) <= max_fused_qubits
        # The last block sharing a qubit is a hard ordering barrier: the
        # instruction may only join that block or a later (qubit-disjoint) one.
        barrier = -1
        for i in range(len(blocks) - 1, -1, -1):
            if blocks[i].qubits & targets:
                barrier = i
                break
        placed = False
        if mergeable:
            for i in range(len(blocks) - 1, max(barrier, 0) - 1, -1):
                block = blocks[i]
                if block.mergeable and len(block.qubits | targets) <= max_fused_qubits:
                    block.qubits |= targets
                    block.instructions.append(instr)
                    placed = True
                    break
        if not placed:
            blocks.append(_FusionBlock(instr, mergeable))

    out = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_fused")
    out.global_phase = circuit.global_phase
    for block in blocks:
        if len(block.instructions) == 1:
            only = block.instructions[0]
            out.append(only.gate, only.qubits)
            continue
        qubits = tuple(sorted(block.qubits))
        # Products of unitaries are unitary: skip MatrixGate's O(dim^3) check.
        out.append(MatrixGate(_block_matrix(block, qubits), label=label, check=False), qubits)
    return out


def fusion_report(
    before: QuantumCircuit, after: QuantumCircuit, *, label: str = "fused"
) -> FusionReport:
    """Summarize a :func:`fuse_gates` run from its input and output circuits.

    ``label`` must match the one passed to :func:`fuse_gates` (blocks are
    recognized by gate name).
    """
    fused = [instr for instr in after if instr.name == label]
    return FusionReport(
        gates_before=before.size(),
        gates_after=after.size(),
        fused_blocks=len(fused),
        widest_block=max((len(instr.qubits) for instr in fused), default=0),
    )
