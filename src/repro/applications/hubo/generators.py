"""Problem generators: hypergraph max-cut, knapsack, and sparse high-order HUBOs.

Hypergraph max-cut is the motivating spin-formalism example of Eq. 13; the
knapsack problem is quoted as a typical boolean-formalism problem (Eq. 14).
Both reductions are standard; they are included so the examples and benchmarks
exercise the phase-separator machinery on problems with realistic structure.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.applications.hubo.problem import HUBOProblem
from repro.exceptions import ProblemError


def maxcut_problem(graph: nx.Graph) -> HUBOProblem:
    """Weighted max-cut of an ordinary graph as a spin HUBO (order 2).

    Cut value ``Σ_{(i,j)} w_ij (1 - z_i z_j)/2``; minimising
    ``Σ w_ij z_i z_j / 2`` (dropping the constant) maximises the cut.
    """
    num_variables = graph.number_of_nodes()
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes()))}
    problem = HUBOProblem(num_variables, formalism="spin")
    for u, v, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        problem.add_term((mapping[u], mapping[v]), weight / 2.0)
        problem.add_term((), -weight / 2.0)
    return problem


def hypergraph_maxcut_problem(
    num_variables: int, hyperedges: Iterable[tuple[Sequence[int], float]]
) -> HUBOProblem:
    """Hypergraph max-cut as a high-order spin HUBO.

    For a hyperedge ``e`` with weight ``w`` the (generalised, parity-based)
    cut indicator used here is ``(1 - Π_{i∈e} z_i)/2``: the edge is counted
    when an odd number of its vertices is on the ``1`` side.  Minimising
    ``Σ_e w_e Π_{i∈e} z_i / 2`` maximises the number of such edges — a single
    order-``|e|`` monomial per hyperedge, the natural high-order HUBO of
    Section V-A.
    """
    problem = HUBOProblem(num_variables, formalism="spin")
    for vertices, weight in hyperedges:
        problem.add_term(tuple(vertices), float(weight) / 2.0)
        problem.add_term((), -float(weight) / 2.0)
    return problem


def random_hypergraph_maxcut(
    num_variables: int,
    num_hyperedges: int,
    max_edge_size: int,
    *,
    rng: np.random.Generator | int | None = None,
) -> HUBOProblem:
    """Random hypergraph max-cut instance (uniform edge sizes in ``[2, max]``)."""
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    hyperedges = []
    for _ in range(num_hyperedges):
        size = int(rng.integers(2, max_edge_size + 1))
        vertices = tuple(rng.choice(num_variables, size=size, replace=False))
        hyperedges.append((vertices, float(rng.uniform(0.5, 1.5))))
    return hypergraph_maxcut_problem(num_variables, hyperedges)


def knapsack_problem(
    values: Sequence[float],
    weights: Sequence[float],
    capacity: float,
    *,
    penalty: float | None = None,
) -> HUBOProblem:
    """0/1 knapsack as a boolean HUBO with a quadratic slack-free penalty.

    The cost is ``-Σ v_i x_i + λ·max(0, Σ w_i x_i - capacity)²`` approximated
    by the usual quadratic penalty ``λ (Σ w_i x_i - capacity)²`` restricted to
    overweight assignments being penalised more than any value gain.  The
    resulting monomials are of order ≤ 2 in the boolean formalism — the paper's
    point being that such problems are *naturally* boolean.
    """
    if len(values) != len(weights):
        raise ProblemError("values and weights must have the same length")
    n = len(values)
    if penalty is None:
        penalty = 2.0 * float(sum(values)) / max(float(capacity), 1.0)
    problem = HUBOProblem(n, formalism="boolean")
    for i, v in enumerate(values):
        problem.add_term((i,), -float(v))
    # λ (Σ w_i x_i - C)² = λ [Σ w_i² x_i + 2 Σ_{i<j} w_i w_j x_i x_j - 2C Σ w_i x_i + C²]
    for i in range(n):
        problem.add_term((i,), penalty * (weights[i] ** 2 - 2.0 * capacity * weights[i]))
        for j in range(i + 1, n):
            problem.add_term((i, j), 2.0 * penalty * weights[i] * weights[j])
    problem.add_term((), penalty * capacity**2)
    return problem


def parity_constrained_problem(
    num_variables: int,
    clauses: Iterable[tuple[Sequence[int], int]],
    *,
    penalty: float = 1.0,
) -> HUBOProblem:
    """Parity (XOR-SAT style) constraints as a naturally high-order boolean HUBO.

    Each clause ``(subset, parity)`` penalises assignments whose subset parity
    differs from the target: the indicator ``(1 - (-1)^{parity} Π z_i)/2``
    expressed back over boolean monomials keeps a single high-order monomial
    per clause in the *spin* picture, making this a good stress case for the
    crossover benchmark.
    """
    problem = HUBOProblem(num_variables, formalism="spin")
    for subset, parity in clauses:
        sign = -1.0 if parity == 0 else 1.0
        problem.add_term(tuple(subset), sign * penalty / 2.0)
        problem.add_term((), penalty / 2.0)
    return problem
