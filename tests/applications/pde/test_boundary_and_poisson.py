"""Unit tests for boundary handling and the Poisson workflows (Section V-C.3)."""

import numpy as np
import pytest

from repro.applications.pde import (
    DirichletCondition,
    NeumannCondition,
    analytic_poisson_1d,
    apply_dirichlet,
    component_override_terms,
    dilated_qlsp_hamiltonian,
    inhomogeneous_coefficient_hamiltonian,
    laplacian_matrix,
    line_grid,
    line_selector_term,
    neumann_rhs_shift,
    paper_boundary_example_hamiltonian,
    poisson_block_encoding,
    poisson_evolution_circuit,
    poisson_operator,
    poisson_system,
    solve_poisson,
    two_line_grid,
)
from repro.exceptions import ProblemError
from repro.operators import SCBTerm


class TestBoundaryHelpers:
    def test_apply_dirichlet_pins_value(self):
        grid = line_grid(8)
        matrix, rhs = poisson_system(grid, np.zeros(8))
        fixed, new_rhs = apply_dirichlet(matrix, rhs, [DirichletCondition(0, 3.0)])
        solution = np.linalg.solve(fixed.toarray(), new_rhs)
        assert solution[0] == pytest.approx(3.0)

    def test_apply_dirichlet_out_of_range(self):
        grid = line_grid(4)
        matrix, rhs = poisson_system(grid, np.zeros(4))
        with pytest.raises(ProblemError):
            apply_dirichlet(matrix, rhs, [DirichletCondition(9, 0.0)])

    def test_neumann_rhs_shift(self):
        rhs = neumann_rhs_shift(np.zeros(4), 0.5, [NeumannCondition(0, 2.0, "low")])
        assert rhs[0] == pytest.approx(-2.0)
        rhs = neumann_rhs_shift(np.zeros(4), 0.5, [NeumannCondition(3, 2.0, "high")])
        assert rhs[3] == pytest.approx(2.0)

    def test_component_override_terms(self):
        terms = component_override_terms([(0, 3, 2.0), (5, 5, -1.0)], 3)
        matrix = sum(t.hermitian_matrix() if not t.is_hermitian else t.matrix() for t in terms)
        assert matrix[0, 3] == pytest.approx(2.0)
        assert matrix[3, 0] == pytest.approx(2.0)
        assert matrix[5, 5] == pytest.approx(-1.0)

    def test_line_selector_term(self):
        base = SCBTerm.from_label("IIX", 1.0)
        selected = line_selector_term([1], base, 1)
        assert selected.label == "nIX"

    def test_line_selector_conflict(self):
        base = SCBTerm.from_label("nIX", 1.0)
        with pytest.raises(ProblemError):
            line_selector_term([1], base, 1)

    def test_paper_boundary_example_is_hermitian_and_sparse(self):
        ham = paper_boundary_example_hamiltonian(1, 2, 3, 4, 0.5, 0.6, 0.7, 0.8, 0.9)
        matrix = ham.matrix()
        np.testing.assert_allclose(matrix, matrix.conj().T, atol=1e-12)
        assert ham.num_terms == 9
        # every listed coefficient shows up in the matrix
        assert matrix[0, 0] == pytest.approx(1.0)   # b11 on |000>
        assert matrix[7, 7] == pytest.approx(4.0)   # b22 on |111>


class TestInhomogeneousCoefficients:
    def test_two_mediums_block_structure(self):
        grid = two_line_grid(4)
        ham = inhomogeneous_coefficient_hamiltonian(grid, [1.0, 3.0])
        matrix = np.real(ham.matrix())
        # line 0 block uses coefficient 1, line 1 block coefficient 3
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[4, 5] == pytest.approx(3.0)
        assert matrix[0, 0] == pytest.approx(-2.0)
        assert matrix[4, 4] == pytest.approx(-6.0)

    def test_requires_two_dimensions(self):
        with pytest.raises(ProblemError):
            inhomogeneous_coefficient_hamiltonian(line_grid(4), [1.0])

    def test_wrong_number_of_line_coefficients(self):
        with pytest.raises(ProblemError):
            inhomogeneous_coefficient_hamiltonian(two_line_grid(4), [1.0, 2.0, 3.0])


class TestPoissonWorkflows:
    def test_solve_matches_analytic_mode(self):
        num_nodes = 16
        source, expected = analytic_poisson_1d(num_nodes, mode=2)
        grid = line_grid(num_nodes, spacing=1.0 / (num_nodes + 1))
        solution = solve_poisson(grid, source)
        np.testing.assert_allclose(solution.solution, expected, atol=1e-9)
        assert solution.residual_norm < 1e-9

    def test_solve_2d_residual(self, rng):
        grid = two_line_grid(8)
        source = rng.normal(size=grid.num_nodes)
        solution = solve_poisson(grid, source)
        assert solution.residual_norm < 1e-9

    def test_singular_boundary_is_pinned(self):
        grid = line_grid(8)
        solution = solve_poisson(grid, np.zeros(8), boundary="periodic")
        assert np.isfinite(solution.solution).all()

    def test_block_encoding_of_laplacian(self):
        grid = line_grid(4)
        be = poisson_block_encoding(grid)
        target = laplacian_matrix(grid).toarray()
        assert be.verification_error(target) < 1e-8

    def test_evolution_circuit_error_scaling(self):
        from repro.analysis import trotter_error_norm

        grid = line_grid(8)
        ham = poisson_operator(grid)
        err1 = trotter_error_norm(ham, poisson_evolution_circuit(grid, 0.2, steps=1), 0.2)
        err4 = trotter_error_norm(ham, poisson_evolution_circuit(grid, 0.2, steps=4), 0.2)
        assert err4 < err1

    def test_dilated_qlsp_term_count_preserved(self):
        grid = line_grid(8)
        ham = poisson_operator(grid)
        dilated = dilated_qlsp_hamiltonian(grid)
        assert dilated.num_terms == ham.num_terms
        assert dilated.num_qubits == ham.num_qubits + 1

    def test_analytic_case_requires_two_nodes(self):
        with pytest.raises(ProblemError):
            analytic_poisson_1d(1)
