"""Controlled direct Hamiltonian simulation (Figs. 20–22).

Many routines (QPE, LCU-based algorithms) need ``exp(-i t H)`` *controlled* by
an ancilla qubit.  The paper notes that for the direct-evolution circuits only
the central rotation has to be controlled — every basis change cancels against
its uncompute when the rotation degenerates to the identity — and that a
sign-selected evolution ``e^{±i t H}`` needs only two extra CZ gates thanks to
``Z R_{X/Y}(θ) Z = R_{X/Y}(-θ)``.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import ControlledGate, Instruction
from repro.core.direct_evolution import EvolutionOptions, evolve_fragment
from repro.exceptions import CircuitError
from repro.operators.hamiltonian import Hamiltonian, HermitianFragment


def _is_central_gate(instruction: Instruction) -> bool:
    """Whether an instruction is the central rotation/phase of an evolution circuit."""
    gate = instruction.gate
    if isinstance(gate, ControlledGate):
        return gate.base.is_rotation()
    return gate.is_rotation()


def controlled_evolve_fragment(
    fragment: HermitianFragment,
    time: float,
    *,
    control: int | None = None,
    ctrl_state: int = 1,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """``C–exp(-i t H)`` obtained by controlling only the central rotation.

    The control qubit is *prepended* (qubit 0) unless ``control`` targets an
    existing free qubit of the register; the rest of the circuit (basis
    changes, parity ladders) is left uncontrolled, exactly as in Fig. 20.
    """
    base = evolve_fragment(fragment, time, options=options)
    n = base.num_qubits

    if control is None:
        control_qubit = 0
        shift = 1
    else:
        if not 0 <= control < n:
            raise CircuitError(f"control qubit {control} out of range")
        if control in fragment.term.support:
            raise CircuitError("the control qubit must not be touched by the fragment")
        control_qubit = control
        shift = 0

    out = QuantumCircuit(n + shift, f"c-{base.name}")
    for instruction in base:
        qubits = tuple(q + shift for q in instruction.qubits)
        if _is_central_gate(instruction):
            gate = instruction.gate
            if isinstance(gate, ControlledGate):
                new_gate = ControlledGate(
                    gate.base,
                    gate.num_ctrl + 1,
                    (ctrl_state << gate.num_ctrl) | gate.ctrl_state,
                )
            else:
                new_gate = ControlledGate(gate, 1, ctrl_state)
            out.append(new_gate, (control_qubit,) + qubits)
        else:
            out.append(instruction.gate, qubits)
    if abs(base.global_phase) > 1e-15:
        # A controlled global phase is a phase gate on the control qubit,
        # applied on the control value that activates the evolution.
        if ctrl_state == 1:
            out.p(base.global_phase, control_qubit)
        else:
            out.x(control_qubit)
            out.p(base.global_phase, control_qubit)
            out.x(control_qubit)
    return out


def sign_controlled_evolve_fragment(
    fragment: HermitianFragment,
    time: float,
    *,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """``e^{∓ i t H}`` with the sign chosen by a prepended control qubit (Fig. 21/22).

    Control ``|0⟩`` applies ``exp(-i t H)`` and control ``|1⟩`` applies
    ``exp(+i t H)``.  The implementation adds two CZ gates between the control
    and the rotation qubit of the uncontrolled circuit, exploiting
    ``Z R_{X/Y}(θ) Z = R_{X/Y}(-θ)``.
    """
    base = evolve_fragment(fragment, time, options=options)
    n = base.num_qubits
    out = QuantumCircuit(n + 1, f"pm-{base.name}")
    out.global_phase = base.global_phase
    for instruction in base:
        qubits = tuple(q + 1 for q in instruction.qubits)
        if _is_central_gate(instruction):
            gate = instruction.gate
            rotation_target = qubits[-1]
            base_name = gate.base.name if isinstance(gate, ControlledGate) else gate.name
            if base_name not in {"rx", "ry", "rxy"}:
                raise CircuitError(
                    "sign-controlled evolution requires an X/Y-axis central rotation; "
                    f"got {base_name!r}"
                )
            out.cz(0, rotation_target)
            out.append(instruction.gate, qubits)
            out.cz(0, rotation_target)
        else:
            out.append(instruction.gate, qubits)
    return out


def controlled_direct_trotter_step(
    hamiltonian: Hamiltonian,
    time: float,
    *,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """Controlled first-order Trotter step (control qubit prepended as qubit 0)."""
    out = QuantumCircuit(hamiltonian.num_qubits + 1, "c-direct-trotter")
    for fragment in hamiltonian.hermitian_fragments():
        out.compose(
            controlled_evolve_fragment(fragment, time, options=options),
            qubits=range(hamiltonian.num_qubits + 1),
        )
    return out
