"""Executors: ordering, chunking, progress, failure capture, worker parity."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import SpecError
from repro.runtime import (
    ProcessExecutor,
    RunSpec,
    SerialExecutor,
    execute_spec,
    resolve_executor,
)


def _square(x):
    return x * x


def problem(**kwargs):
    kwargs.setdefault("time", 0.3)
    return repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3, "XIXI": 0.2}, **kwargs
    )


class TestSerialExecutor:
    def test_map_preserves_order_and_reports_progress(self):
        seen = []
        result = SerialExecutor().map(
            _square, range(5), progress=lambda done, total: seen.append((done, total))
        )
        assert result == [0, 1, 4, 9, 16]
        assert seen == [(i, 5) for i in range(1, 6)]


class TestProcessExecutor:
    def test_map_matches_serial(self):
        items = list(range(23))
        serial = SerialExecutor().map(_square, items)
        pooled = ProcessExecutor(4, chunk_size=3).map(_square, items)
        assert pooled == serial

    def test_progress_reaches_total(self):
        seen = []
        ProcessExecutor(2, chunk_size=2).map(
            _square, range(7), progress=lambda d, t: seen.append((d, t))
        )
        assert seen[-1] == (7, 7)
        assert all(t == 7 for _, t in seen)

    def test_single_item_runs_in_process(self):
        assert ProcessExecutor(4).map(_square, [3]) == [9]

    def test_empty(self):
        assert ProcessExecutor(2).map(_square, []) == []

    def test_default_chunking(self):
        executor = ProcessExecutor(2)
        assert executor._resolve_chunk(100) == 13  # ceil(100 / 8)
        assert executor._resolve_chunk(1) == 1

    def test_invalid_parameters(self):
        with pytest.raises(SpecError):
            ProcessExecutor(0)
        with pytest.raises(SpecError):
            ProcessExecutor(2, chunk_size=0)


class TestResolveExecutor:
    def test_resolution_table(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        pool = resolve_executor(3)
        assert isinstance(pool, ProcessExecutor) and pool.n_workers == 3
        explicit = ProcessExecutor(2)
        assert resolve_executor(explicit) is explicit
        with pytest.raises(SpecError):
            resolve_executor("four")
        with pytest.raises(SpecError):
            resolve_executor(True)


class TestExecuteSpec:
    def test_success_outcome(self):
        payload = RunSpec(problem=problem()).to_dict(canonical=True)
        outcome = execute_spec(payload)
        assert outcome["ok"] and outcome["result"]["kind"] == "statevector"
        assert outcome["wall_time"] > 0

    def test_failure_outcome_records_traceback(self):
        payload = RunSpec(
            problem=problem(), backend="exact", run_kwargs={"bogus": 1}
        ).to_dict(canonical=True)
        outcome = execute_spec(payload)
        assert not outcome["ok"]
        assert outcome["error"]["type"] == "CompileError"
        assert "bogus" in outcome["error"]["message"]
        assert "Traceback" in outcome["error"]["traceback"]

    def test_garbage_payload_is_captured_not_raised(self):
        outcome = execute_spec({"spec": "run"})  # no problem at all
        assert not outcome["ok"] and outcome["error"]["type"] == "KeyError"


@pytest.mark.slow
class TestCrossProcessParity:
    def test_pool_outcomes_match_in_process(self):
        specs = [
            RunSpec(
                problem=problem(steps=k), backend="sampling",
                run_kwargs={"shots": 128, "rng": 7},
            ).to_dict(canonical=True)
            for k in (1, 2, 3, 4)
        ]
        local = [execute_spec(s) for s in specs]
        pooled = ProcessExecutor(2, chunk_size=1).map(execute_spec, specs)
        for a, b in zip(local, pooled):
            assert a["ok"] and b["ok"]
            assert a["result"]["counts"] == b["result"]["counts"]


class TestPicklabilityFailFast:
    def test_lambda_callable_is_a_clear_runtime_error(self):
        pool = ProcessExecutor(2)
        with pytest.raises(RuntimeError, match="cannot pickle the callable"):
            pool.map(lambda x: x, [1, 2, 3])

    def test_unpicklable_item_names_the_slice(self):
        pool = ProcessExecutor(2, chunk_size=2)
        items = [1, 2, (lambda: None), 4]  # chunk [2:4] holds the offender
        with pytest.raises(RuntimeError, match=r"could not pickle items"):
            pool.map(_square, items)

    def test_single_worker_serial_path_still_works_with_lambdas(self):
        # max_workers=1 short-circuits to in-process execution: no pickling.
        assert ProcessExecutor(1).map(lambda x: x + 1, [1, 2]) == [2, 3]


# ---------------------------------------------------------------------------
# Plan batching, the LRU program memo, worker hygiene and map_specs
# ---------------------------------------------------------------------------


def _read_blas_env(_):
    import os

    return os.environ.get("OMP_NUM_THREADS")


class TestProgramMemoLRU:
    def test_hits_refresh_recency(self, monkeypatch):
        """A touched entry must survive an eviction that FIFO would lose."""
        import repro.compile.pipeline as pipeline
        from repro.runtime import executor as executor_module

        calls = []
        real = pipeline.compile_problem

        def counting(problem, strategy, **kwargs):
            calls.append((problem.content_key(), strategy))
            return real(problem, strategy, **kwargs)

        monkeypatch.setattr(pipeline, "compile_problem", counting)
        monkeypatch.setattr(executor_module, "_PROGRAM_MEMO_CAP", 3)
        monkeypatch.setattr(executor_module, "_PROGRAM_MEMO", {})

        problems = {
            name: repro.SimulationProblem.from_labels(
                4, {label: 0.5}, time=0.3, name=name
            )
            for name, label in zip("abcd", ("ZZII", "IZZI", "IIZZ", "XIII"))
        }
        memo = executor_module._memoized_program
        memo(problems["a"], "direct")
        memo(problems["b"], "direct")
        memo(problems["c"], "direct")
        assert len(calls) == 3

        memo(problems["a"], "direct")  # hit: refreshes a's recency
        assert len(calls) == 3

        memo(problems["d"], "direct")  # evicts b (LRU), not a (FIFO would)
        assert len(calls) == 4

        memo(problems["a"], "direct")  # still memoized
        assert len(calls) == 4
        memo(problems["b"], "direct")  # evicted: compiles again
        assert len(calls) == 5

    def test_hit_returns_identical_program(self):
        from repro.runtime.executor import _memoized_program

        first = _memoized_program(problem(), "direct")
        assert _memoized_program(problem(), "direct") is first


class TestBatchGrouping:
    def kernel_payload(self, initial_state=0, steps=1):
        return RunSpec(
            problem=problem(steps=steps),
            backend="kernel",
            run_kwargs={"initial_state": initial_state},
        ).to_dict(canonical=True)

    def test_statevector_has_no_batch_axis(self):
        from repro.runtime import batch_key

        payload = RunSpec(problem=problem()).to_dict(canonical=True)
        assert batch_key(payload) is None

    def test_batch_key_ignores_only_the_batch_axis(self):
        from repro.runtime import batch_key

        a = batch_key(self.kernel_payload(initial_state=0))
        b = batch_key(self.kernel_payload(initial_state=5))
        c = batch_key(self.kernel_payload(initial_state=0, steps=2))
        assert a == b  # differ only along the batch axis
        assert a != c  # different compile → different plan → different group

    def test_group_payloads_consecutive_and_order_preserving(self):
        from repro.runtime import group_payloads

        payloads = [
            self.kernel_payload(initial_state=0),
            self.kernel_payload(initial_state=1),
            RunSpec(problem=problem()).to_dict(canonical=True),  # unbatchable
            self.kernel_payload(initial_state=2),
            self.kernel_payload(initial_state=3),
        ]
        groups = group_payloads(payloads)
        assert groups == [[0, 1], [2], [3, 4]]
        assert [i for group in groups for i in group] == list(range(5))


class TestExecuteSpecBatch:
    def test_kernel_initial_state_batch_is_bit_identical(self):
        import numpy as np

        from repro.runtime import execute_spec_batch

        payloads = [
            RunSpec(
                problem=problem(), backend="kernel",
                run_kwargs={"initial_state": index},
            ).to_dict(canonical=True)
            for index in range(5)
        ]
        batched = execute_spec_batch(payloads)
        single = [execute_spec(p) for p in payloads]
        for fused, reference in zip(batched, single):
            assert fused["ok"] and reference["ok"]
            assert fused["batched"] == 5
            for key in reference["arrays"]:
                assert np.array_equal(fused["arrays"][key], reference["arrays"][key])

    def test_sampling_rng_batch_matches_per_point_draws(self):
        from repro.runtime import execute_spec_batch

        payloads = [
            RunSpec(
                problem=problem(), backend="sampling",
                run_kwargs={"shots": 128, "rng": 100 + index},
            ).to_dict(canonical=True)
            for index in range(4)
        ]
        batched = execute_spec_batch(payloads)
        single = [execute_spec(p) for p in payloads]
        for fused, reference in zip(batched, single):
            assert fused["ok"] and reference["ok"]
            assert fused["result"]["counts"] == reference["result"]["counts"]

    def test_bad_point_falls_back_to_per_point_capture(self):
        from repro.runtime import execute_spec_batch

        payloads = [
            RunSpec(
                problem=problem(), backend="kernel",
                run_kwargs={"initial_state": index},
            ).to_dict(canonical=True)
            for index in (0, 1 << 10, 1)  # the middle index is out of range
        ]
        outcomes = execute_spec_batch(payloads)
        assert outcomes[0]["ok"] and outcomes[2]["ok"]
        assert not outcomes[1]["ok"]
        assert "batched" not in outcomes[0]  # fallback ran per point

    def test_unbatchable_backend_matches_serial(self):
        import numpy as np

        from repro.runtime import execute_spec_batch

        payloads = [
            RunSpec(problem=problem(steps=k)).to_dict(canonical=True)
            for k in (1, 2)
        ]
        outcomes = execute_spec_batch(payloads)
        single = [execute_spec(p) for p in payloads]
        for fused, reference in zip(outcomes, single):
            assert fused["ok"]
            assert np.array_equal(fused["arrays"]["data"], reference["arrays"]["data"])


class TestMapSpecs:
    def payloads(self):
        specs = [
            RunSpec(
                problem=problem(), backend="sampling",
                run_kwargs={"shots": 64, "rng": index},
            )
            for index in range(4)
        ] + [
            RunSpec(problem=problem(steps=k)) for k in (1, 2)
        ]
        return [spec.to_dict(canonical=True) for spec in specs]

    def test_single_worker_matches_per_point_map(self):
        import numpy as np

        payloads = self.payloads()
        reference = [execute_spec(p) for p in payloads]
        outcomes = ProcessExecutor(1).map_specs(payloads)
        for fused, ref in zip(outcomes, reference):
            assert fused["ok"] and ref["ok"]
            assert fused["result"]["kind"] == ref["result"]["kind"]
            for key in ref["arrays"]:
                assert np.array_equal(fused["arrays"][key], ref["arrays"][key])

    def test_pool_matches_per_point_map(self):
        import numpy as np

        payloads = self.payloads()
        reference = [execute_spec(p) for p in payloads]
        outcomes = ProcessExecutor(2, chunk_size=2).map_specs(payloads)
        for fused, ref in zip(outcomes, reference):
            assert fused["ok"] and ref["ok"]
            if ref["result"]["kind"] == "sampling":
                assert fused["result"]["counts"] == ref["result"]["counts"]
            for key in ref["arrays"]:
                assert np.array_equal(fused["arrays"][key], ref["arrays"][key])

    def test_progress_reaches_total(self):
        seen = []
        ProcessExecutor(2, chunk_size=2).map_specs(
            self.payloads(), progress=lambda d, t: seen.append((d, t))
        )
        assert seen[-1][0] == seen[-1][1] == 6

    def test_empty(self):
        assert ProcessExecutor(2).map_specs([]) == []

    def test_chunks_never_split_groups(self):
        executor = ProcessExecutor(4, chunk_size=2)
        groups = [[0, 1, 2], [3], [4, 5]]
        chunks = executor._chunk_groups(groups, 6)
        assert chunks == [[[0, 1, 2]], [[3], [4, 5]]]

    def test_use_shm_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        with pytest.raises(SpecError, match="use_shm"):
            ProcessExecutor(2, use_shm=True)
        with pytest.raises(SpecError):
            ProcessExecutor(2, blas_threads_per_worker=0)


class TestWorkerHygiene:
    def test_pool_workers_pin_blas_threads(self):
        values = ProcessExecutor(2, chunk_size=1).map(_read_blas_env, [0, 1, 2])
        assert values == ["1", "1", "1"]


# ---------------------------------------------------------------------------
# Per-point progress plumbing
# ---------------------------------------------------------------------------


def _slow_square(x):
    import time

    time.sleep(0.1)
    return x * x


class _RecordingQueue:
    def __init__(self):
        self.counts = []

    def put_nowait(self, count):
        self.counts.append(count)


class _BrokenQueue:
    def put_nowait(self, count):
        raise RuntimeError("manager went away")


class TestPerPointProgress:
    def test_run_chunk_counts_each_item(self):
        from repro.runtime.executor import _run_chunk

        queue = _RecordingQueue()
        assert _run_chunk(_square, [1, 2, 3], queue) == [1, 4, 9]
        assert queue.counts == [1, 1, 1]

    def test_run_chunk_survives_a_broken_queue(self):
        from repro.runtime.executor import _run_chunk

        assert _run_chunk(_square, [1, 2], _BrokenQueue()) == [1, 4]

    def test_run_spec_chunk_counts_group_sizes(self):
        from repro.runtime.executor import _run_spec_chunk

        groups = [
            [
                RunSpec(
                    problem=problem(), backend="sampling",
                    run_kwargs={"shots": 32, "rng": index},
                ).to_dict(canonical=True)
                for index in range(size)
            ]
            for size in (2, 1)
        ]
        queue = _RecordingQueue()
        outcome_groups = _run_spec_chunk(groups, None, queue)
        assert [len(g) for g in outcome_groups] == [2, 1]
        assert queue.counts == [2, 1]

    def test_pool_reports_mid_chunk_progress(self):
        # Two 4-item chunks of ~0.1 s items: chunk-granular reporting would
        # produce at most 3 callbacks, per-point counts produce more.
        seen = []
        ProcessExecutor(2, chunk_size=4).map(
            _slow_square, range(8), progress=lambda d, t: seen.append((d, t))
        )
        assert seen[-1] == (8, 8)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)
        assert len(seen) >= 4

    def test_no_progress_callback_skips_the_manager(self):
        executor = ProcessExecutor(2)
        manager, queue, drain = executor._progress_channel(None, 10)
        assert manager is None and queue is None
        drain(final=True)  # the no-op drain must be callable

