"""Direct Hamiltonian simulation of Single Component Basis terms (Section III).

This is the paper's central construction.  For a gathered Hermitian fragment

    ``H = γ·(O_0 ⊗ ... ⊗ O_{N-1}) (+ h.c.)``

with factors in ``{I, X, Y, Z, n, m, σ, σ†}``, :func:`evolve_fragment` builds
an *exact* circuit for ``exp(-i t H)`` following Fig. 2:

1. the transition factors are rotated into the generalized-Bell basis so that
   the coupled pair ``|a⟩/|b⟩`` is carried by a single pivot qubit;
2. the Pauli factors are diagonalised to ``Z`` and their parity is reported
   onto one Pauli qubit, which controls the *sign* of the rotation through
   ``Z R_{X/Y}(θ) Z = R_{X/Y}(-θ)``;
3. the number factors become controls (value ``1`` for ``n``, ``0`` for ``m``)
   of the central rotation;
4. the central rotation acts on the pivot qubit (transition terms) or as a
   phase / Z-rotation (diagonal and Pauli-only terms);
5. everything is uncomputed.

Complex coefficients are handled either exactly (a single rotation about an
axis in the XY plane) or with the paper's ``RX·RY`` split, which introduces a
small Trotter error (Section III-A) — the choice is an explicit option so the
two can be compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import ControlledGate, StandardGate
from repro.core.basis_change import (
    parity_accumulation,
    pauli_diagonalisation,
    transition_basis_change,
)
from repro.core.families import TermStructure, analyze_term
from repro.exceptions import CircuitError, OperatorError
from repro.operators.hamiltonian import Hamiltonian, HermitianFragment
from repro.operators.scb_term import SCBTerm
from repro.utils.bits import bits_to_int


@dataclass
class EvolutionOptions:
    """Options of the direct-evolution circuit builder.

    Attributes
    ----------
    basis_change:
        ``"linear"`` or ``"pyramid"`` layout for the transition basis change
        (Fig. 2 vs Fig. 3).
    parity_mode:
        ``"linear"`` or ``"pyramid"`` layout for the Pauli parity report
        (Fig. 25).
    complex_mode:
        ``"exact"`` uses a single rotation about an axis in the XY plane for a
        complex coefficient; ``"trotter_split"`` reproduces the paper's
        ``RX(-2 Re[z] θ) · RY(-2 Im[z] θ)`` product, which does not commute and
        therefore carries a (small) Trotter error.
    pivot:
        Optional explicit pivot qubit for the transition basis change.
    """

    basis_change: str = "linear"
    parity_mode: str = "linear"
    complex_mode: str = "exact"
    pivot: int | None = None


def evolve_term(
    term: SCBTerm,
    time: float,
    *,
    include_hc: bool | None = None,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """Circuit for ``exp(-i t (term [+ h.c.]))``.

    ``include_hc=None`` (default) adds the Hermitian conjugate exactly when
    the term is not Hermitian on its own, mirroring Eq. 5.
    """
    if include_hc is None:
        include_hc = not term.is_hermitian
    return evolve_fragment(HermitianFragment(term, include_hc), time, options=options)


def evolve_fragment(
    fragment: HermitianFragment,
    time: float,
    *,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """Circuit for ``exp(-i t H)`` with ``H`` the gathered Hermitian fragment."""
    options = options or EvolutionOptions()
    structure = analyze_term(fragment.term)
    coeff = complex(fragment.term.coefficient)

    if not fragment.include_hc:
        if structure.has_transition:
            raise OperatorError(
                "a term with transition factors must include its Hermitian conjugate"
            )
        if abs(coeff.imag) > 1e-12:
            raise OperatorError("a Hermitian fragment needs a real coefficient")

    if structure.has_transition:
        return _evolve_transition_fragment(structure, coeff, time, options)
    # No transition factors: the fragment is γ·Π_k ⊗ PS (γ real); the optional
    # + h.c. simply doubles the coefficient.
    gamma = coeff.real * (2.0 if fragment.include_hc else 1.0)
    if abs(coeff.imag) > 1e-12 and fragment.include_hc:
        # γ A + γ* A = 2 Re(γ) A for Hermitian A.
        gamma = 2.0 * coeff.real
    return _evolve_diagonal_or_pauli_fragment(structure, gamma, time, options)


# ---------------------------------------------------------------------------
# Transition fragments (the general case of Fig. 2)
# ---------------------------------------------------------------------------


def _evolve_transition_fragment(
    structure: TermStructure, coeff: complex, time: float, options: EvolutionOptions
) -> QuantumCircuit:
    n = structure.num_qubits
    circuit = QuantumCircuit(n, f"exp(-i·{time:.4g}·H[{structure.term.label}])")

    # 1. generalized-Bell basis change on the transition qubits.
    change = transition_basis_change(
        n,
        structure.transition_qubits,
        structure.ket_bits,
        mode=options.basis_change,
        pivot=options.pivot,
    )
    pivot = change.pivot
    circuit.compose(change.circuit)

    # 2. Pauli diagonalisation and parity report.
    diag = pauli_diagonalisation(n, structure.pauli_qubits, structure.pauli_labels)
    circuit.compose(diag)
    parity_qubit: int | None = None
    parity = QuantumCircuit(n)
    if structure.has_pauli:
        parity_qubit = structure.pauli_qubits[-1]
        parity = parity_accumulation(
            n, structure.pauli_qubits, parity_qubit, mode=options.parity_mode
        )
        circuit.compose(parity)

    # 3. central (possibly multi-controlled) rotation on the pivot qubit,
    #    sign-controlled by the parity qubit.
    controls, control_bits = structure.controls_for_rotation(pivot)
    rotation_gates = _central_rotation_gates(structure, coeff, time, pivot, options)

    if parity_qubit is not None:
        circuit.cz(parity_qubit, pivot)
    for gate, qubits in rotation_gates:
        if controls:
            ctrl_state = bits_to_int(control_bits)
            circuit.append(
                ControlledGate(gate, len(controls), ctrl_state), tuple(controls) + qubits
            )
        else:
            circuit.append(gate, qubits)
    if parity_qubit is not None:
        circuit.cz(parity_qubit, pivot)

    # 4. uncompute.
    circuit.compose(parity.inverse())
    circuit.compose(diag.inverse())
    circuit.compose(change.circuit.inverse())
    return circuit


def _central_rotation_gates(
    structure: TermStructure,
    coeff: complex,
    time: float,
    pivot: int,
    options: EvolutionOptions,
) -> list[tuple[StandardGate, tuple[int, ...]]]:
    """The rotation acting on the pivot qubit, as (gate, target-qubits) pairs.

    With the pivot carrying ``|a⟩`` on bit value ``x`` and ``|b⟩`` on ``1-x``,
    the restricted Hamiltonian is ``Re(γ)·X ± Im(γ)·Y`` (the sign of the Y
    component flips with ``x``), so the exact evolution is a rotation about an
    axis in the XY plane by an angle ``2·t·|γ|``-ish — built here either as a
    single ``rxy`` gate (exact) or as the paper's RX·RY split.
    """
    # Sign of the Y component: with pivot ket bit x = 1 the restriction is
    # Re(γ)X + Im(γ)Y; with x = 0 it is Re(γ)X - Im(γ)Y.
    change = transition_basis_change(
        structure.num_qubits,
        structure.transition_qubits,
        structure.ket_bits,
        mode=options.basis_change,
        pivot=options.pivot,
    )
    y_sign = 1.0 if change.pivot_ket_bit == 1 else -1.0
    theta_x = 2.0 * time * coeff.real
    theta_y = 2.0 * time * coeff.imag * y_sign

    if abs(coeff.imag) < 1e-14:
        return [(StandardGate("rx", (theta_x,)), (pivot,))]
    if options.complex_mode == "exact":
        return [(StandardGate("rxy", (theta_x, theta_y)), (pivot,))]
    if options.complex_mode == "trotter_split":
        # The paper's Section III-A replacement RX(-2Re[z]θ)·RY(-2Im[z]θ).
        return [
            (StandardGate("rx", (theta_x,)), (pivot,)),
            (StandardGate("ry", (theta_y,)), (pivot,)),
        ]
    raise CircuitError(f"unknown complex_mode {options.complex_mode!r}")


# ---------------------------------------------------------------------------
# Fragments without transition factors (diagonal keys and/or Pauli strings)
# ---------------------------------------------------------------------------


def _evolve_diagonal_or_pauli_fragment(
    structure: TermStructure, gamma: float, time: float, options: EvolutionOptions
) -> QuantumCircuit:
    n = structure.num_qubits
    circuit = QuantumCircuit(n, f"exp(-i·{time:.4g}·H[{structure.term.label}])")
    angle = 2.0 * time * gamma

    if structure.has_pauli:
        # γ · Π_k ⊗ PS: diagonalise the Paulis, report their parity on one of
        # them, apply an RZ controlled by the number key, uncompute.
        diag = pauli_diagonalisation(n, structure.pauli_qubits, structure.pauli_labels)
        circuit.compose(diag)
        rot_qubit = structure.pauli_qubits[-1]
        parity = parity_accumulation(
            n, structure.pauli_qubits, rot_qubit, mode=options.parity_mode
        )
        circuit.compose(parity)
        gate = StandardGate("rz", (angle,))
        if structure.has_number:
            circuit.append(
                ControlledGate(gate, len(structure.number_qubits), structure.number_key),
                tuple(structure.number_qubits) + (rot_qubit,),
            )
        else:
            circuit.append(gate, (rot_qubit,))
        circuit.compose(parity.inverse())
        circuit.compose(diag.inverse())
        return circuit

    if structure.has_number:
        # Pure projector term γ·|k⟩⟨k|: a (multi-controlled) phase of -t·γ on
        # the key state — exp(-i t γ n̂) = P(-t·γ) generalised (appendix VIII-A).
        qubits = structure.number_qubits
        bits = structure.number_bits
        target = qubits[-1]
        target_bit = bits[-1]
        phase = -time * gamma
        if target_bit == 0:
            circuit.x(target)
        if len(qubits) == 1:
            circuit.p(phase, target)
        else:
            ctrl_state = bits_to_int(bits[:-1])
            circuit.append(
                ControlledGate(StandardGate("p", (phase,)), len(qubits) - 1, ctrl_state),
                tuple(qubits[:-1]) + (target,),
            )
        if target_bit == 0:
            circuit.x(target)
        return circuit

    # Identity term: a global phase.
    circuit.global_phase = -time * gamma
    return circuit


# ---------------------------------------------------------------------------
# Whole-Hamiltonian single Trotter step (order 1); higher orders in trotter.py
# ---------------------------------------------------------------------------


def direct_trotter_step(
    hamiltonian: Hamiltonian,
    time: float,
    *,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """One first-order product-formula step ``Π_j exp(-i t H_j)``.

    Each gathered Hermitian fragment is exponentiated exactly; the only error
    of the full step is the usual Trotter error between non-commuting
    fragments.
    """
    circuit = QuantumCircuit(hamiltonian.num_qubits, f"direct-trotter(t={time:.4g})")
    for fragment in hamiltonian.hermitian_fragments():
        circuit.compose(evolve_fragment(fragment, time, options=options))
    return circuit


def exact_fragment_matrix(fragment: HermitianFragment, time: float) -> np.ndarray:
    """Dense reference ``exp(-i t H)`` of a fragment (for verification)."""
    from scipy.linalg import expm

    return expm(-1j * time * fragment.matrix())


def fragment_evolution_error(
    fragment: HermitianFragment, time: float, options: EvolutionOptions | None = None
) -> float:
    """Spectral-norm error of the circuit against the exact fragment evolution.

    Zero (up to numerical precision) for real coefficients and for
    ``complex_mode="exact"`` — the paper's exactness claim for individual
    terms.
    """
    from repro.circuits.unitary import circuit_unitary
    from repro.utils.linalg import spectral_norm_diff

    circuit = evolve_fragment(fragment, time, options=options)
    return spectral_norm_diff(circuit_unitary(circuit), exact_fragment_matrix(fragment, time))


def trotter_step_matrix_error(
    hamiltonian: Hamiltonian, time: float, options: EvolutionOptions | None = None
) -> float:
    """Spectral-norm error of one direct Trotter step against ``exp(-i t H)``."""
    from scipy.linalg import expm

    from repro.circuits.unitary import circuit_unitary
    from repro.utils.linalg import spectral_norm_diff

    circuit = direct_trotter_step(hamiltonian, time, options=options)
    exact = expm(-1j * time * hamiltonian.matrix())
    return spectral_norm_diff(circuit_unitary(circuit), exact)
