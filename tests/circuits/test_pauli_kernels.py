"""Unit + property tests of the matrix-free Pauli-rotation kernels.

The oracle is dense linear algebra: ``apply_pauli_string`` must equal ``P·ψ``
for the matrix of the string, and ``apply_pauli_rotation`` must equal
``expm(-iθP)·ψ`` — on single states and with a trailing batch axis, across
the diagonal (Z-only), pure-permutation (X-only), identity and generic paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.circuits.pauli_kernels import (
    apply_diagonal_rotation,
    apply_pauli_rotation,
    apply_pauli_string,
    apply_permutation_rotation,
    apply_rotation_sequence,
    basis_indices,
    pauli_masks,
)
from repro.exceptions import SimulationError
from repro.operators.pauli import PauliString


def random_state(num_qubits: int, seed: int, batch: int | None = None) -> np.ndarray:
    rng = np.random.default_rng(seed)
    shape = (1 << num_qubits,) if batch is None else (1 << num_qubits, batch)
    vec = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    return vec / np.linalg.norm(vec, axis=0)


pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)


class TestMasks:
    def test_known_encodings(self):
        # Qubit 0 is the most significant bit.
        assert pauli_masks("XI") == (0b10, 0b00, 1)
        assert pauli_masks("IZ") == (0b00, 0b01, 1)
        assert pauli_masks("YI") == (0b10, 0b10, -1j)
        assert pauli_masks("YY") == (0b11, 0b11, -1)
        assert pauli_masks("II") == (0, 0, 1)

    def test_rejects_bad_labels(self):
        with pytest.raises(SimulationError):
            pauli_masks("XQ")

    @given(labels=pauli_labels)
    @settings(max_examples=60, deadline=None)
    def test_string_action_matches_matrix(self, labels):
        matrix = PauliString(labels).matrix()
        x_mask, z_mask, phase = pauli_masks(labels)
        psi = random_state(len(labels), seed=7)
        np.testing.assert_allclose(
            apply_pauli_string(psi, x_mask, z_mask, phase), matrix @ psi, atol=1e-12
        )


class TestRotation:
    @given(labels=pauli_labels, theta=st.floats(-3.0, 3.0), seed=st.integers(0, 99))
    @settings(max_examples=80, deadline=None)
    def test_matches_dense_exponential(self, labels, theta, seed):
        matrix = PauliString(labels).matrix()
        x_mask, z_mask, phase = pauli_masks(labels)
        psi = random_state(len(labels), seed)
        reference = expm(-1j * theta * matrix) @ psi
        np.testing.assert_allclose(
            apply_pauli_rotation(psi, x_mask, z_mask, phase, theta),
            reference,
            atol=1e-12,
        )

    @given(labels=pauli_labels, theta=st.floats(-3.0, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_batch_axis(self, labels, theta):
        matrix = PauliString(labels).matrix()
        x_mask, z_mask, phase = pauli_masks(labels)
        batch = random_state(len(labels), seed=3, batch=4)
        reference = expm(-1j * theta * matrix) @ batch
        np.testing.assert_allclose(
            apply_pauli_rotation(batch, x_mask, z_mask, phase, theta),
            reference,
            atol=1e-12,
        )

    def test_input_is_not_mutated(self):
        psi = random_state(3, seed=0)
        before = psi.copy()
        apply_pauli_rotation(psi, 0b101, 0b010, 1, 0.4)
        np.testing.assert_array_equal(psi, before)

    def test_identity_is_a_global_phase(self):
        psi = random_state(2, seed=1)
        out = apply_pauli_rotation(psi, 0, 0, 1, 0.8)
        np.testing.assert_allclose(out, np.exp(-0.8j) * psi, atol=1e-12)

    def test_norm_is_preserved(self):
        psi = random_state(4, seed=2)
        out = apply_pauli_rotation(psi, 0b1010, 0b0110, -1j, 1.3)
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-12)


class TestFastPaths:
    @pytest.mark.parametrize("labels", ["ZZI", "IZZ", "ZIZ"])
    def test_diagonal_path(self, labels):
        matrix = PauliString(labels).matrix()
        psi = random_state(3, seed=5)
        out = psi.copy()
        apply_diagonal_rotation(out, pauli_masks(labels)[1], 0.6)
        np.testing.assert_allclose(out, expm(-0.6j * matrix) @ psi, atol=1e-12)

    @pytest.mark.parametrize("labels", ["XXI", "IXX", "XIX"])
    def test_permutation_path(self, labels):
        matrix = PauliString(labels).matrix()
        psi = random_state(3, seed=6)
        out = psi.copy()
        apply_permutation_rotation(out, pauli_masks(labels)[0], 0.6)
        np.testing.assert_allclose(out, expm(-0.6j * matrix) @ psi, atol=1e-12)


class TestSequences:
    def test_sequence_with_repetitions(self):
        rotations = [
            pauli_masks("XY") + (0.3,),
            pauli_masks("ZI") + (0.7,),
        ]
        psi = random_state(2, seed=8)
        out = apply_rotation_sequence(psi, rotations, repetitions=2)
        expected = psi
        for _ in range(2):
            for x, z, phase, theta in rotations:
                expected = apply_pauli_rotation(expected, x, z, phase, theta)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_bad_dimension_raises(self):
        with pytest.raises(SimulationError):
            apply_pauli_rotation(np.ones(3, dtype=complex), 1, 0, 1, 0.1)


class TestIndexCache:
    def test_indices_are_shared_and_read_only(self):
        a = basis_indices(5)
        assert a is basis_indices(5)
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 1
