"""Unit tests for the QuantumCircuit container."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, Statevector, circuit_unitary, circuits_equivalent
from repro.exceptions import CircuitError


class TestConstruction:
    def test_negative_width(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_append_out_of_range(self):
        qc = QuantumCircuit(2)
        with pytest.raises(Exception):
            qc.x(3)

    def test_convenience_methods_chain(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rz(0.3, 2).ccx(0, 1, 2)
        assert qc.size() == 4

    def test_copy_is_independent(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        copy = qc.copy()
        copy.x(1)
        assert qc.size() == 1 and copy.size() == 2

    def test_global_phase_copied(self):
        qc = QuantumCircuit(1)
        qc.global_phase = 0.4
        assert qc.copy().global_phase == pytest.approx(0.4)


class TestCompose:
    def test_compose_same_width(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.compose(b)
        assert [i.name for i in a] == ["h", "cx"]

    def test_compose_with_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.compose(b, qubits=[2, 0])
        assert a.instructions[0].qubits == (2, 0)

    def test_compose_too_wide(self):
        a = QuantumCircuit(1)
        b = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            a.compose(b)

    def test_compose_wrong_map_length(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            a.compose(b, qubits=[0])

    def test_compose_accumulates_global_phase(self):
        a = QuantumCircuit(1)
        a.global_phase = 0.2
        b = QuantumCircuit(1)
        b.global_phase = 0.3
        a.compose(b)
        assert a.global_phase == pytest.approx(0.5)


class TestInverseAndPower:
    def test_inverse_is_inverse(self, rng):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.crx(0.7, 0, 1)
        qc.ccp(0.3, 0, 1, 2)
        qc.rz(-1.2, 2)
        product = qc.copy()
        product.compose(qc.inverse())
        np.testing.assert_allclose(circuit_unitary(product), np.eye(8), atol=1e-9)

    def test_power(self):
        qc = QuantumCircuit(1)
        qc.rz(0.2, 0)
        cubed = qc.power(3)
        assert cubed.size() == 3

    def test_negative_power_inverts(self):
        qc = QuantumCircuit(1)
        qc.rx(0.5, 0)
        inv = qc.power(-1)
        combined = qc.copy()
        combined.compose(inv)
        np.testing.assert_allclose(circuit_unitary(combined), np.eye(2), atol=1e-10)


class TestControlledCircuit:
    def test_controlled_identity_on_control_zero(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        controlled = qc.controlled(1)
        state = Statevector.zero_state(2).evolve(controlled)
        np.testing.assert_allclose(state.data, [1, 0, 0, 0], atol=1e-12)

    def test_controlled_acts_on_control_one(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        controlled = qc.controlled(1)
        state = Statevector(0b10, 2).evolve(controlled)
        np.testing.assert_allclose(np.abs(state.data), [0, 0, 0, 1], atol=1e-12)

    def test_controlled_includes_global_phase(self):
        qc = QuantumCircuit(1)
        qc.global_phase = 0.9
        controlled = qc.controlled(1)
        unitary = circuit_unitary(controlled)
        assert np.angle(unitary[2, 2]) == pytest.approx(0.9)
        assert unitary[0, 0] == pytest.approx(1.0)


class TestMetrics:
    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.h(1)
        qc.h(2)
        assert qc.depth() == 1

    def test_depth_sequential(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(0, 1)
        assert qc.depth() == 2

    def test_two_qubit_depth_ignores_singles(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(0)
        qc.cx(0, 1)
        assert qc.two_qubit_depth() == 1

    def test_count_ops(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        qc.cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_num_two_qubit_gates(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.ccx(0, 1, 2)
        qc.x(0)
        assert qc.num_two_qubit_gates() == 1
        assert qc.num_multi_qubit_gates() == 1

    def test_num_rotation_gates(self):
        qc = QuantumCircuit(2)
        qc.rx(0.1, 0)
        qc.cp(0.2, 0, 1)
        qc.h(1)
        assert qc.num_rotation_gates() == 2

    def test_qubits_used(self):
        qc = QuantumCircuit(5)
        qc.cx(3, 1)
        assert qc.qubits_used() == (1, 3)

    def test_draw_contains_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        text = qc.draw()
        assert "h" in text


class TestMultiControlledAppenders:
    def test_mcx_matrix(self):
        qc = QuantumCircuit(3)
        qc.mcx([0, 1], 2, 0b10)
        unitary = circuit_unitary(qc)
        # control state |10>: block rows 4..5 swapped
        assert unitary[4, 5] == 1 and unitary[5, 4] == 1
        assert unitary[6, 6] == 1

    def test_mc_unitary(self, random_unitary_2x2):
        qc = QuantumCircuit(2)
        qc.mc_unitary(random_unitary_2x2, [0], [1])
        ref = QuantumCircuit(2)
        ref.unitary(np.kron(np.diag([1, 0]), np.eye(2)) + np.kron(np.diag([0, 1]), random_unitary_2x2), [0, 1])
        assert circuits_equivalent(qc, ref)
