"""repro.runtime — parallel sweep execution with content-addressed caching.

The execution layer the compile pipeline was built to receive: declarative
:class:`RunSpec`/:class:`SweepSpec` grids, a persistent
:class:`ResultCache` addressed by canonical content hashes, pluggable
:class:`SerialExecutor`/:class:`ProcessExecutor` fan-out with deterministic
per-task seeding and failure capture, and the :class:`Session` facade that
composes them.  The process pool additionally plan-batches grid points that
share a compiled program (one vectorized ``(dim, B)`` evolution instead of
``B`` scalar ones), pins worker BLAS pools to one thread, and returns large
arrays through POSIX shared memory instead of pickling them::

    import repro
    from repro.runtime import Session

    session = Session(executor=4)           # 4 workers, standard cache
    results = session.sweep(
        problem,
        strategies=("direct", "pauli"),
        steps=(1, 2, 4, 8),
        backend="statevector",
    )

Also available from the command line: ``python -m repro.runtime
{run,sweep,cache}``.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    CacheEntry,
    ResultCache,
    default_cache_dir,
)
from repro.runtime.executor import (
    BATCH_AXES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    batch_key,
    execute_spec,
    execute_spec_batch,
    group_payloads,
    resolve_executor,
)
from repro.runtime.results import (
    ResultSet,
    RunRecord,
    decode_result,
    encode_result,
    result_to_json,
)
from repro.runtime.session import (
    Session,
    get_default_session,
    set_default_session,
)
from repro.runtime.shm import (
    SHM_ENV,
    SHM_MIN_BYTES_ENV,
    pin_blas_threads,
    reap_orphans,
    shm_enabled,
)
from repro.runtime.spec import SEEDED_BACKENDS, RunSpec, SweepSpec

__all__ = [
    "BATCH_AXES",
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "CacheEntry",
    "Executor",
    "ProcessExecutor",
    "ResultCache",
    "ResultSet",
    "RunRecord",
    "RunSpec",
    "SEEDED_BACKENDS",
    "SHM_ENV",
    "SHM_MIN_BYTES_ENV",
    "SerialExecutor",
    "Session",
    "SweepSpec",
    "batch_key",
    "decode_result",
    "default_cache_dir",
    "encode_result",
    "execute_spec",
    "execute_spec_batch",
    "get_default_session",
    "group_payloads",
    "pin_blas_threads",
    "reap_orphans",
    "resolve_executor",
    "result_to_json",
    "set_default_session",
    "shm_enabled",
]
