"""``python -m repro.service`` — run the daemon, join the fleet, manage jobs.

Subcommands::

    python -m repro.service serve    [--socket P] [--workers N] [--chunk-size K]
                                     [--metrics-port PORT]
    python -m repro.service worker   [--connect P] [--id ID] [--max-idle S]
    python -m repro.service submit   SPEC.json [--priority P] [--wait] [--out F]
    python -m repro.service status   JOB [--json] [--points]
    python -m repro.service result   JOB [--out F] [--json]
    python -m repro.service cancel   JOB
    python -m repro.service jobs
    python -m repro.service workers
    python -m repro.service stats    [--json] [--watch SECONDS]
    python -m repro.service top      [--interval S] [--count N] [--json]
    python -m repro.service health   [--json]
    python -m repro.service shutdown

``SPEC.json`` is a serialized RunSpec, SweepSpec or bare SimulationProblem
(same shapes ``python -m repro.runtime`` accepts).  ``JOB`` is a job id or
any unambiguous prefix of one.  Every subcommand accepts ``--socket`` to
target a non-default daemon — including one forwarded from another machine.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path

from repro.exceptions import ReproError


def _client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.socket)


def _add_socket_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="daemon socket (default: $REPRO_SERVICE_DIR/daemon.sock)",
    )


def _load_spec_payload(path: str) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"spec file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"spec file {path} is not valid JSON: {exc}") from None
    if payload.get("spec") in ("run", "sweep"):
        return payload
    if "hamiltonian" in payload:  # a bare problem becomes a single run
        return {"spec": "run", "problem": payload}
    raise ReproError(
        "spec JSON must be a RunSpec, a SweepSpec or a bare SimulationProblem"
    )


def _age(seconds: "float | None") -> str:
    if seconds is None:
        return "—"
    return f"{seconds:.1f}s"


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import Daemon

    daemon = Daemon(
        args.socket,
        service_dir=args.service_dir,
        cache=args.cache_dir,
        local_workers=args.workers,
        chunk_size=args.chunk_size,
        lease_seconds=args.lease,
        metrics_port=args.metrics_port,
    )
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: daemon.request_stop())
    print(
        f"repro daemon listening on {daemon.socket_path} "
        f"({args.workers} local worker(s), cache {daemon.cache.directory})",
        file=sys.stderr,
    )
    # start() explicitly (rather than serve_forever) so the metrics port —
    # possibly ephemeral (--metrics-port 0) — can be announced once bound.
    daemon.start()
    if daemon.metrics_server is not None:
        print(f"serving metrics at {daemon.metrics_server.url}", file=sys.stderr)
    try:
        while daemon.running:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
    print("repro daemon stopped", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.shm import pin_blas_threads
    from repro.service.protocol import default_socket_path
    from repro.service.worker import run_worker

    # A fleet of workers parallelizes across processes; each process keeps
    # its BLAS single-threaded so the fleet never oversubscribes the box.
    pin_blas_threads(1)
    socket_path = args.connect or args.socket or default_socket_path()
    return run_worker(
        socket_path,
        worker_id=args.id,
        poll_interval=args.poll,
        max_idle=args.max_idle,
        reconnect_window=args.reconnect,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    ack = client.submit(_load_spec_payload(args.spec), priority=args.priority)
    origin = "deduplicated against an existing job" if ack["deduped"] else "queued"
    print(f"job {ack['job_id'][:16]}… {origin} "
          f"(state {ack['state']}, {ack['total']} point(s), "
          f"{ack['cached']} from cache)")
    if not args.wait:
        return 0
    status = client.wait(ack["job_id"], progress=_progress_line(args))
    return _emit_result(client, status["job_id"], args)


def _progress_line(args: argparse.Namespace):
    if getattr(args, "quiet", False):
        return None

    def report(done: int, total: int) -> None:
        end = "\n" if done == total else "\r"
        print(f"  [{done}/{total}] points complete", end=end,
              file=sys.stderr, flush=True)

    return report


def _cmd_status(args: argparse.Namespace) -> int:
    status = _client(args).status(args.job, points=args.points)
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    print(f"job   {status['job_id']}")
    print(f"state {status['state']}  ({status['kind']}, priority {status['priority']})")
    print(f"points {status['done']}/{status['total']} done, "
          f"{status['failed']} failed, {status['cancelled']} cancelled, "
          f"{status['cached']} from cache")
    if status.get("error"):
        print(f"error {status['error']['type']}: {status['error']['message']}")
    if args.points:
        for point in status.get("points", []):
            print(f"  {point['key'][:12]}…  {point['status']:<9} "
                  f"{point.get('label') or ''}")
    return 0 if status["state"] != "failed" else 1


def _emit_result(client, job_id: str, args: argparse.Namespace) -> int:
    from repro.runtime.results import result_to_json

    records = client.records(job_id)
    failed = [r for r in records if not r["ok"]]
    document = {
        "job_id": job_id,
        "num_records": len(records),
        "num_failed": len(failed),
        "records": [
            {
                "key": r["key"],
                "coords": r["coords"],
                "label": r["label"],
                "cached": r["cached"],
                "wall_time": r["wall_time"],
                "error": r["error"],
                **({"value": result_to_json(r["value"])} if r["ok"] else {}),
            }
            for r in records
        ],
    }
    if getattr(args, "out", None):
        Path(args.out).write_text(json.dumps(document, indent=2))
        print(f"wrote {args.out}")
    if getattr(args, "json", False):
        print(json.dumps(document, indent=2))
    else:
        for record in records:
            status = "cached" if record["cached"] else (
                "ok" if record["ok"] else record["error"]["type"])
            label = record["label"] or record["key"][:12] + "…"
            print(f"  {label:<28} {status}")
        print(f"{len(records)} records, {len(failed)} failed")
    return 1 if failed else 0


def _cmd_result(args: argparse.Namespace) -> int:
    return _emit_result(_client(args), args.job, args)


def _cmd_cancel(args: argparse.Namespace) -> int:
    ack = _client(args).cancel(args.job)
    changed = "cancelled" if ack["changed"] else f"already {ack['state']}"
    print(f"job {ack['job_id'][:16]}… {changed}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    jobs = _client(args).jobs()
    if not jobs:
        print("no jobs")
        return 0
    now = time.time()
    for job in jobs:
        print(f"{job['job_id'][:16]}…  {job['state']:<9} {job['kind']:<5} "
              f"{job['done']}/{job['total']} done  "
              f"age {_age(now - job['created'])}  {job.get('label') or ''}")
    return 0


def _cmd_workers(args: argparse.Namespace) -> int:
    workers = _client(args).workers()
    if not workers:
        print("no workers have reported yet")
        return 0
    now = time.time()
    for info in workers:
        state = "busy" if info["busy"] else "idle"
        print(f"{info['worker_id']:<24} {info['kind']:<7} {state:<5} "
              f"{info['points_completed']} points, "
              f"{info['chunks_completed']} chunks, "
              f"{info['lost_leases']} lost leases, "
              f"seen {_age(now - info['last_seen'])} ago")
    return 0


def _render_stats(stats: dict) -> None:
    queue, points, workers = stats["queue"], stats["points"], stats["workers"]
    hit_rate = points["hit_rate"]
    print(f"daemon pid {stats['pid']}, up {stats['uptime']:.1f}s")
    print(f"queue   {queue['chunks_pending']} chunks pending "
          f"({queue['points_pending']} points), "
          f"{queue['chunks_leased']} leased")
    print("jobs    " + ", ".join(
        f"{count} {state}" for state, count in stats["jobs"].items() if count))
    print(f"points  {points['executed']} executed, "
          f"{points['from_cache']} from cache "
          f"(hit rate {'—' if hit_rate is None else f'{hit_rate:.0%}'}), "
          f"{points['dedup_hits']} dedup hits")
    print(f"workers {workers['total']} seen, {workers['busy']} busy "
          f"(utilization {workers['utilization']:.0%})")
    print(f"cache   {stats['cache']['entries']} entries, "
          f"{stats['cache']['total_bytes']:,} B at {stats['cache']['directory']}")
    phases = stats.get("phases") or {}
    if phases:
        split = ", ".join(
            f"{name} {seconds:.2f}s" for name, seconds in sorted(phases.items()))
        print(f"phases  {split}")
    counters = (stats.get("metrics") or {}).get("counters") or {}
    if counters:
        line = ", ".join(
            f"{name}={int(value)}" for name, value in sorted(counters.items()))
        print(f"metrics {line}")
    histograms = (stats.get("metrics") or {}).get("histograms") or {}
    for name in sorted(histograms):
        h = histograms[name]
        print(f"timing  {name}: n={h['count']} "
              f"p50={h['p50']:.4g} p90={h.get('p90', h['p95']):.4g} "
              f"p99={h.get('p99', h['max']):.4g} max={h['max']:.4g}")
    resilience = stats.get("resilience")
    if resilience is not None:
        print(f"resilience {int(resilience.get('retries', 0))} retries, "
              f"{int(resilience.get('fallbacks', 0))} fallbacks, "
              f"{int(resilience.get('timeouts', 0))} timeouts, "
              f"{int(resilience.get('faults_injected', 0))} faults injected")


def _cmd_stats(args: argparse.Namespace) -> int:
    client = _client(args)
    watch = getattr(args, "watch", None)
    count = getattr(args, "count", None)
    iteration = 0
    while True:
        stats = client.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            if watch is not None and iteration:
                # Clear and re-home so the dashboard redraws in place.
                print("\x1b[2J\x1b[H", end="")
            _render_stats(stats)
        iteration += 1
        if watch is None or (count is not None and iteration >= count):
            return 0
        time.sleep(watch)


# ---------------------------------------------------------------------------
# top — the live fleet dashboard
# ---------------------------------------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values: "list[float]", width: int = 32) -> str:
    """The last ``width`` values as a one-line unicode sparkline."""
    values = [max(0.0, float(v)) for v in values][-width:]
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return _SPARK_CHARS[0] * len(values)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(scale, int(round(v / peak * scale)))] for v in values
    )


def _progress_bar(done: int, total: int, width: int = 24) -> str:
    total = max(total, 1)
    filled = int(round(width * min(done, total) / total))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _eta(pending: int, points_per_second: float) -> str:
    if pending <= 0:
        return "done"
    if points_per_second <= 0:
        return "—"
    seconds = pending / points_per_second
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def _render_top(stats: dict, series: dict, jobs: "list[dict]",
                workers: "list[dict]") -> None:
    samples = series.get("samples", [])
    latest = samples[-1] if samples else {}
    derived = latest.get("derived", {})
    pps = float(derived.get("points_per_second") or 0.0)
    hit_rate = derived.get("cache_hit_rate")
    trend = [s.get("derived", {}).get("points_per_second") or 0.0 for s in samples]

    print(f"repro top — daemon pid {stats['pid']}, up {stats['uptime']:.0f}s, "
          f"{len(samples)} samples @ {series.get('interval', 1.0):g}s")
    hit = "—" if hit_rate is None else f"{hit_rate:.0%}"
    print(f"throughput {pps:8.1f} points/s  {_sparkline(trend)}")
    queue = stats["queue"]
    print(f"queue      {queue['points_pending']} points pending "
          f"({queue['chunks_pending']} chunks), {queue['chunks_leased']} chunks "
          f"leased, cache hit rate {hit}")
    total_workers = len(workers)
    busy = sum(1 for w in workers if w["busy"])
    lost = sum(w["lost_leases"] for w in workers)
    print(f"workers    {busy}/{total_workers} busy "
          f"{_progress_bar(busy, max(total_workers, 1), 16)}  "
          f"{lost} lost lease(s)")

    active = [j for j in jobs if j["state"] in ("queued", "running")]
    recent = [j for j in jobs if j["state"] not in ("queued", "running")][-3:]
    if active or recent:
        print()
        print(f"{'job':<18} {'state':<9} {'points':>11} {'':<26} {'eta':>6}")
        for job in active + recent:
            done, total = job["done"], job["total"]
            pending = total - done - job["failed"] - job["cancelled"]
            eta = _eta(pending, pps) if job["state"] == "running" else ""
            print(f"{job['job_id'][:16] + '…':<18} {job['state']:<9} "
                  f"{done:>5}/{total:<5} {_progress_bar(done, total):<26} "
                  f"{eta:>6}")

    phases = stats.get("phases") or {}
    if phases:
        total_phase = sum(phases.values()) or 1.0
        split = "  ".join(
            f"{name} {seconds / total_phase:.0%}"
            for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]))
        print()
        print(f"phases     {split}")
    resilience = stats.get("resilience") or {}
    print(f"resilience {int(resilience.get('retries', 0))} retries, "
          f"{int(resilience.get('fallbacks', 0))} fallbacks, "
          f"{int(resilience.get('timeouts', 0))} timeouts, "
          f"{int(resilience.get('faults_injected', 0))} faults injected")


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service.protocol import ServiceConnection

    iteration = 0
    # One held-open connection: top polls four ops per refresh, so a fresh
    # socket per op would quadruple the daemon's accept load for nothing.
    try:
        with ServiceConnection(args.socket, connect_window=5.0) as conn:
            while True:
                stats = conn.request("stats")
                series = conn.request("series", last=64)
                jobs = conn.request("jobs")["jobs"]
                workers = conn.request("workers")["workers"]
                if args.json:
                    print(json.dumps({
                        "stats": stats, "series": series,
                        "jobs": jobs, "workers": workers,
                    }, indent=2))
                else:
                    if iteration:
                        # Clear and re-home so the dashboard redraws in place.
                        print("\x1b[2J\x1b[H", end="")
                    _render_top(stats, series, jobs, workers)
                iteration += 1
                if args.count is not None and iteration >= args.count:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # Downstream closed (top | head, a dying pager): exit quietly, and
        # point stdout at devnull so the interpreter's shutdown flush does
        # not raise the same error again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_health(args: argparse.Namespace) -> int:
    health = _client(args).health()
    if args.json:
        print(json.dumps(health, indent=2))
        return 0 if health["healthy"] else 1
    queue, reaper, cache = health["queue"], health["reaper"], health["cache"]
    verdict = "healthy" if health["healthy"] else "DEGRADED"
    print(f"daemon pid {health['pid']}, up {health['uptime']:.1f}s — {verdict}")
    print(f"queue   {queue['chunks_pending']} chunks pending "
          f"({queue['points_pending']} points), "
          f"{queue['chunks_leased']} leased ({queue['points_leased']} points)")
    print(f"workers {health['workers']['total']} seen, "
          f"{health['workers']['busy']} busy, "
          f"{health['workers']['local']} local")
    reaper_state = "ok" if reaper["ok"] else "LAGGING"
    print(f"reaper  {reaper_state}, last pass {reaper['lag_seconds']:.2f}s ago "
          f"(interval {reaper['interval_seconds']:.2f}s)")
    cache_state = "writable" if cache["writable"] else (
        f"NOT WRITABLE ({cache.get('error')})")
    print(f"cache   {cache_state} at {cache['directory']}")
    print(f"shm     {'enabled' if health['shm']['enabled'] else 'disabled'}")
    resilience = health.get("resilience") or {}
    print(f"resilience {int(resilience.get('retries', 0))} retries, "
          f"{int(resilience.get('fallbacks', 0))} fallbacks, "
          f"{int(resilience.get('timeouts', 0))} timeouts, "
          f"{int(resilience.get('faults_injected', 0))} faults injected")
    return 0 if health["healthy"] else 1


def _cmd_shutdown(args: argparse.Namespace) -> int:
    _client(args).shutdown_daemon()
    print("daemon stopping")
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service: job-queue daemon and worker fleet "
        "over the repro runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon in the foreground")
    _add_socket_flag(serve)
    serve.add_argument("--service-dir", default=None, metavar="DIR",
                       help="state directory (default: $REPRO_SERVICE_DIR)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared result cache (default: $REPRO_CACHE_DIR)")
    serve.add_argument("--workers", type=int, default=1,
                       help="in-daemon worker threads (0: external only)")
    serve.add_argument("--chunk-size", type=int, default=2,
                       help="grid points per claimable chunk")
    serve.add_argument("--lease", type=float, default=60.0,
                       help="chunk lease seconds before re-queue")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="serve Prometheus text exposition on "
                       "http://127.0.0.1:PORT/metrics (0: ephemeral port)")
    serve.set_defaults(fn=_cmd_serve)

    worker = sub.add_parser("worker", help="join a daemon as an external worker")
    worker.add_argument("--connect", default=None, metavar="PATH",
                        help="daemon socket to drain (alias of --socket)")
    _add_socket_flag(worker)
    worker.add_argument("--id", default=None, help="worker identity "
                        "(default: hostname-pid)")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between claims while idle")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many idle seconds")
    worker.add_argument("--reconnect", type=float, default=5.0,
                        metavar="SECONDS",
                        help="seconds to ride out daemon unreachability "
                        "(with backoff) before exiting; 0 fails fast")
    worker.set_defaults(fn=_cmd_worker)

    submit = sub.add_parser("submit", help="queue a run/sweep spec file")
    submit.add_argument("spec", help="JSON file: RunSpec, SweepSpec or problem")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print results")
    submit.add_argument("--out", default=None, metavar="OUT.json",
                        help="with --wait: write the result document here")
    submit.add_argument("--json", action="store_true",
                        help="with --wait: print the result document")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress the progress line")
    _add_socket_flag(submit)
    submit.set_defaults(fn=_cmd_submit)

    status = sub.add_parser("status", help="one job's state and progress")
    status.add_argument("job", help="job id (or unambiguous prefix)")
    status.add_argument("--json", action="store_true")
    status.add_argument("--points", action="store_true",
                        help="also list per-point statuses")
    _add_socket_flag(status)
    status.set_defaults(fn=_cmd_status)

    result = sub.add_parser("result", help="fetch a finished job's results")
    result.add_argument("job", help="job id (or unambiguous prefix)")
    result.add_argument("--out", default=None, metavar="OUT.json")
    result.add_argument("--json", action="store_true")
    _add_socket_flag(result)
    result.set_defaults(fn=_cmd_result)

    cancel = sub.add_parser("cancel", help="cancel a queued/running job")
    cancel.add_argument("job", help="job id (or unambiguous prefix)")
    _add_socket_flag(cancel)
    cancel.set_defaults(fn=_cmd_cancel)

    jobs = sub.add_parser("jobs", help="list every job the daemon knows")
    _add_socket_flag(jobs)
    jobs.set_defaults(fn=_cmd_jobs)

    workers = sub.add_parser("workers", help="list the daemon's worker fleet")
    _add_socket_flag(workers)
    workers.set_defaults(fn=_cmd_workers)

    stats = sub.add_parser("stats", help="queue/jobs/cache/worker metrics")
    stats.add_argument("--json", action="store_true")
    stats.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                       help="re-poll and redraw every SECONDS until interrupted")
    stats.add_argument("--count", type=int, default=None, metavar="N",
                       help="with --watch: stop after N polls")
    _add_socket_flag(stats)
    stats.set_defaults(fn=_cmd_stats)

    top = sub.add_parser(
        "top", help="live dashboard: throughput trend, job ETAs, workers")
    top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                     help="seconds between refreshes")
    top.add_argument("--count", type=int, default=None, metavar="N",
                     help="stop after N refreshes (non-interactive use)")
    top.add_argument("--json", action="store_true",
                     help="print the raw stats/series/jobs/workers documents")
    _add_socket_flag(top)
    top.set_defaults(fn=_cmd_top)

    health = sub.add_parser(
        "health", help="degradation probe (exit 1 when degraded)")
    health.add_argument("--json", action="store_true")
    _add_socket_flag(health)
    health.set_defaults(fn=_cmd_health)

    shutdown = sub.add_parser("shutdown", help="stop the daemon")
    _add_socket_flag(shutdown)
    shutdown.set_defaults(fn=_cmd_shutdown)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    from repro.telemetry import configure_logging

    configure_logging()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
