"""Graceful degradation: cache failures recompute, shm exhaustion re-pickles."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.resilience import configure_faults
from repro.runtime import Session
from repro.runtime.cache import MISS, ResultCache
from repro.runtime.results import encode_result
from repro.runtime import shm
from repro.telemetry import metrics

from _chaos_helpers import make_problem

KEY = "ab" + "0" * 62


class TestCachePutDegradation:
    def test_enospc_put_is_swallowed(self, tmp_path):
        cache = ResultCache(tmp_path)
        configure_faults("cache.put:raise=ENOSPC")
        cache.put(KEY, 1.5)
        assert KEY not in cache
        assert cache.get(KEY, MISS) is MISS
        assert metrics.counter("cache.put_failures") == 1
        assert metrics.counter("resilience.fallbacks") == 1
        assert metrics.counter("cache.puts") == 0
        # The disk recovers: the same put now lands and serves.
        configure_faults(None)
        cache.put(KEY, 1.5)
        assert cache.get(KEY) == 1.5
        assert metrics.counter("cache.puts") == 1

    def test_torn_write_reads_as_miss_and_is_swept(self, tmp_path):
        cache = ResultCache(tmp_path)
        meta, arrays = encode_result(np.arange(8.0))
        configure_faults("cache.put.torn:raise=EIO@n=1")
        cache.put_encoded(KEY, meta, arrays)
        sidecar, npz = cache._paths(KEY)
        # A genuine torn entry: the arrays landed, the existence marker (the
        # sidecar) did not — readers must see a recoverable miss.
        assert npz.exists() and not sidecar.exists()
        assert cache.get(KEY, MISS) is MISS
        assert cache.stats()["orphans_swept"] == 1
        assert not npz.exists()
        cache.put_encoded(KEY, meta, arrays)
        np.testing.assert_array_equal(cache.get(KEY), np.arange(8.0))

    def test_failed_put_cleans_its_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        meta, arrays = encode_result(np.arange(8.0))
        configure_faults("cache.put.torn:raise=ENOSPC")
        cache.put_encoded(KEY, meta, arrays)
        leftovers = [p for p in cache.directory.rglob("*.tmp")]
        assert leftovers == []


class TestCacheGetDegradation:
    def test_injected_read_failure_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, 2.5)
        configure_faults("cache.get:raise=EIO@n=1")
        assert cache.get(KEY, MISS) is MISS
        assert metrics.counter("cache.get_failures") == 1
        assert metrics.counter("resilience.fallbacks") == 1
        assert cache.get(KEY) == 2.5  # the next read serves normally

    def test_corrupt_sidecar_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, 3.5)
        sidecar, _ = cache._paths(KEY)
        sidecar.write_text("{definitely not json")
        assert cache.get(KEY, MISS) is MISS

    def test_corrupt_array_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        meta, arrays = encode_result(np.arange(8.0))
        cache.put_encoded(KEY, meta, arrays)
        _, npz = cache._paths(KEY)
        npz.write_bytes(b"truncated garbage")
        assert cache.get(KEY, MISS) is MISS
        assert metrics.counter("resilience.fallbacks") == 1


class TestShmDegradation:
    def test_export_exhaustion_falls_back_to_pickle(self):
        if not shm.shm_enabled():
            pytest.skip("shared-memory transport unavailable")
        prefix = shm.make_prefix()
        shm.activate_worker(prefix)
        try:
            big = np.arange(float(shm.min_shm_bytes() // 8 + 16))
            outcome = {"ok": True, "result": {"kind": "ndarray"},
                       "arrays": {"data": big}}
            configure_faults("shm.export:raise=ENOSPC")
            exported = shm.export_outcome(outcome)
        finally:
            shm.activate_worker(None)
            shm.reap_prefix(prefix)
        # The array rode the pickle pipe instead of a segment — same bytes.
        assert not shm.is_ref(exported["arrays"]["data"])
        np.testing.assert_array_equal(exported["arrays"]["data"], big)
        assert metrics.counter("shm.export_fallbacks") == 1
        assert metrics.counter("resilience.fallbacks") == 1
        assert metrics.counter("shm.segments_exported") == 0


class TestSessionDegradation:
    def test_sweep_survives_an_uncachable_store(self, tmp_path):
        configure_faults("cache.put:raise=ENOSPC")
        session = Session(cache=ResultCache(tmp_path / "cache"))
        results = session.sweep(make_problem(), strategies=("direct",), steps=(1, 2))
        assert results.ok
        assert all(not record.cached for record in results)
        assert metrics.counter("cache.put_failures") == 2
        # Nothing was stored, so a clean re-run recomputes (still no failure).
        configure_faults(None)
        again = session.sweep(make_problem(), strategies=("direct",), steps=(1, 2))
        assert again.ok
        assert all(not record.cached for record in again)
        third = session.sweep(make_problem(), strategies=("direct",), steps=(1, 2))
        assert all(record.cached for record in third)
