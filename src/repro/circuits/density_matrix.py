"""Vectorized density-matrix simulation.

The mixed-state counterpart of :mod:`repro.circuits.statevector`: the state
``ρ`` is kept as a ``(2,)*2n`` tensor — the first ``n`` axes are row (ket)
indices, the last ``n`` are column (bra) indices — and every operation is a
pair of :func:`~repro.circuits.statevector.apply_matrix` contractions,

    ``ρ ← U ρ U†``   =  contract ``U`` into the row axes, ``conj(U)`` into the
    column axes,

so a gate costs exactly two tensordots and a ``k``-qubit Kraus channel costs
``2·(#Kraus)`` of them — no Python loop over matrix elements.  Memory is
``4^n`` amplitudes; the class guards construction at
:data:`DENSITY_MAX_QUBITS` qubits (override per call) the same way the dense
unitary path guards ``unitary_max_qubits``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import Statevector, apply_matrix, sample_outcome_counts
from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.noise.channels import KrausChannel
    from repro.noise.model import NoiseModel

#: Default qubit ceiling: 12 qubits is a 4096×4096 complex matrix (256 MB is
#: reached near 14); pass ``max_qubits=`` to the constructor to override.
DENSITY_MAX_QUBITS = 12


class DensityMatrix:
    """A mixed state on ``num_qubits`` qubits with fast noisy evolution."""

    def __init__(
        self,
        data: "np.ndarray | Statevector | int",
        num_qubits: int | None = None,
        *,
        max_qubits: int = DENSITY_MAX_QUBITS,
    ):
        if isinstance(data, Statevector):
            vec = data.data
            rho = np.outer(vec, vec.conj())
        elif isinstance(data, (int, np.integer)):
            if num_qubits is None:
                raise SimulationError("num_qubits is required when initialising from an int")
            dim = 1 << num_qubits
            rho = np.zeros((dim, dim), dtype=complex)
            rho[int(data), int(data)] = 1.0
        else:
            arr = np.asarray(data, dtype=complex)
            if arr.ndim == 1:
                rho = np.outer(arr, arr.conj())
            elif arr.ndim == 2 and arr.shape[0] == arr.shape[1]:
                rho = arr.copy()
            else:
                raise SimulationError(
                    f"cannot build a density matrix from shape {arr.shape}"
                )
        dim = rho.shape[0]
        if dim == 0 or dim & (dim - 1):
            raise SimulationError(f"density matrix dimension {dim} is not a power of two")
        n = dim.bit_length() - 1
        if num_qubits is not None and num_qubits != n:
            raise SimulationError(
                f"density matrix of dimension {dim} does not match {num_qubits} qubits"
            )
        if n > max_qubits:
            raise SimulationError(
                f"refusing to build a dense {dim}x{dim} density matrix on {n} "
                f"qubits (limit {max_qubits}; raise max_qubits= explicitly)"
            )
        self._rho = rho
        self.num_qubits = n

    # ------------------------------------------------------------------ basics

    @classmethod
    def zero_state(cls, num_qubits: int, **kwargs) -> "DensityMatrix":
        return cls(0, num_qubits, **kwargs)

    @classmethod
    def maximally_mixed(cls, num_qubits: int, **kwargs) -> "DensityMatrix":
        dim = 1 << num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, **kwargs)

    @classmethod
    def from_statevector(cls, state: "Statevector | np.ndarray", **kwargs) -> "DensityMatrix":
        vec = state.data if isinstance(state, Statevector) else np.asarray(state)
        return cls(np.asarray(vec, dtype=complex).reshape(-1), **kwargs)

    @property
    def data(self) -> np.ndarray:
        return self._rho.copy()

    @property
    def dim(self) -> int:
        return self._rho.shape[0]

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(self._rho.copy(), max_qubits=self.num_qubits)

    def trace(self) -> float:
        return float(np.real(np.trace(self._rho)))

    def purity(self) -> float:
        """``Tr[ρ²]`` — 1 for pure states, ``1/2^n`` for the maximally mixed."""
        # Tr[ρ²] = Σ_ij ρ_ij ρ_ji = Σ_ij ρ_ij conj(ρ_ij) for Hermitian ρ.
        return float(np.real(np.sum(self._rho * self._rho.T)))

    def is_hermitian(self, atol: float = 1e-9) -> bool:
        return bool(np.allclose(self._rho, self._rho.conj().T, atol=atol, rtol=0.0))

    def fidelity(self, state: "Statevector | np.ndarray") -> float:
        """``⟨ψ|ρ|ψ⟩`` against a pure reference state."""
        vec = state.data if isinstance(state, Statevector) else np.asarray(state, dtype=complex)
        vec = vec.reshape(-1)
        return float(np.real(np.vdot(vec, self._rho @ vec)))

    # --------------------------------------------------------------- evolution

    def _tensor(self) -> np.ndarray:
        n = self.num_qubits
        return self._rho.reshape((2,) * (2 * n) if n else (1, 1))

    def evolve(
        self,
        circuit: QuantumCircuit,
        noise_model: "NoiseModel | None" = None,
    ) -> "DensityMatrix":
        """``ρ`` after the circuit, with the noise model's channel after each gate.

        With ``noise_model=None`` (or an ideal model) this is exact unitary
        conjugation gate by gate; channels from the model are looked up by
        gate *name*, so noisy runs must evolve the logical circuit — fused
        ``MatrixGate`` blocks would hide the names the model keys on.
        """
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError(
                f"circuit acts on {circuit.num_qubits} qubits, state has {self.num_qubits}"
            )
        n = self.num_qubits
        noisy = noise_model is not None and noise_model.has_gate_noise
        tensor = self._tensor()
        for instr in circuit:
            matrix = instr.gate.matrix()
            tensor = apply_matrix(tensor, matrix, instr.qubits)
            tensor = apply_matrix(
                tensor, matrix.conj(), [q + n for q in instr.qubits]
            )
            if noisy:
                for channel, targets in noise_model.channels_for(
                    instr.name, instr.qubits
                ):
                    tensor = _apply_channel_tensor(tensor, channel, targets, n)
        out = DensityMatrix.__new__(DensityMatrix)
        out._rho = tensor.reshape(self.dim, self.dim)
        out.num_qubits = n
        return out

    def evolve_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Conjugate ``ρ`` by an explicit unitary on a subset of qubits."""
        n = self.num_qubits
        matrix = np.asarray(matrix, dtype=complex)
        tensor = apply_matrix(self._tensor(), matrix, qubits)
        tensor = apply_matrix(tensor, matrix.conj(), [q + n for q in qubits])
        out = DensityMatrix.__new__(DensityMatrix)
        out._rho = tensor.reshape(self.dim, self.dim)
        out.num_qubits = n
        return out

    def apply_channel(
        self, channel: "KrausChannel", qubits: Sequence[int]
    ) -> "DensityMatrix":
        """``Σ_i K_i ρ K_i†`` with the Kraus operators on the given qubits."""
        tensor = _apply_channel_tensor(
            self._tensor(), channel, tuple(qubits), self.num_qubits
        )
        out = DensityMatrix.__new__(DensityMatrix)
        out._rho = tensor.reshape(self.dim, self.dim)
        out.num_qubits = self.num_qubits
        return out

    # ------------------------------------------------------------ measurements

    def probabilities(self) -> np.ndarray:
        """Computational-basis outcome probabilities (the real diagonal)."""
        diag = np.real(np.diagonal(self._rho)).copy()
        np.clip(diag, 0.0, None, out=diag)
        return diag

    def expectation_value(self, operator: np.ndarray) -> complex:
        """``Tr[O ρ]`` for a dense or sparse operator of matching dimension."""
        op = operator
        if hasattr(op, "toarray") and op.shape[0] > (1 << 10):
            return complex((op @ self._rho).diagonal().sum())
        op = np.asarray(op.toarray() if hasattr(op, "toarray") else op, dtype=complex)
        if op.shape != self._rho.shape:
            raise SimulationError(
                f"operator shape {op.shape} does not match state dimension {self.dim}"
            )
        return complex(np.trace(op @ self._rho))

    def sample_counts(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[str, int]:
        """Sample measurement outcomes in the computational basis."""
        rng = rng if rng is not None else np.random.default_rng()
        return sample_outcome_counts(self.probabilities(), shots, rng, self.num_qubits)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DensityMatrix(num_qubits={self.num_qubits}, trace={self.trace():.6f}, "
            f"purity={self.purity():.6f})"
        )


def _apply_channel_tensor(
    tensor: np.ndarray,
    channel: "KrausChannel",
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Kraus sum on a ``(2,)*2n`` density tensor: two contractions per operator."""
    if channel.num_qubits != len(qubits):
        raise SimulationError(
            f"channel {channel.name!r} acts on {channel.num_qubits} qubits, "
            f"got {len(qubits)} targets"
        )
    col_axes = [q + num_qubits for q in qubits]
    result = None
    for op in channel.kraus:
        branch = apply_matrix(tensor, op, qubits)
        branch = apply_matrix(branch, op.conj(), col_axes)
        result = branch if result is None else result + branch
    return result


def simulate_density(
    circuit: QuantumCircuit,
    initial_state: "DensityMatrix | Statevector | int" = 0,
    noise_model: "NoiseModel | None" = None,
    **kwargs,
) -> DensityMatrix:
    """Convenience function mirroring :func:`repro.circuits.statevector.simulate`."""
    if isinstance(initial_state, DensityMatrix):
        state = initial_state
    else:
        state = DensityMatrix(initial_state, circuit.num_qubits, **kwargs)
    return state.evolve(circuit, noise_model=noise_model)
