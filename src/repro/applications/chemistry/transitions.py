"""Individual electronic-transition circuits (Section V-B.1, Figs. 11–12, 19).

The gathered one-body fragment ``h(a†_i a_j + h.c.)`` and two-body fragment
``h(a†_i a†_j a_k a_l + h.c.)`` are single SCB terms after Jordan–Wigner, so
the direct strategy exponentiates each of them *exactly* — the paper's claim
that "the individual electronic transitions are implemented without error".
This module exposes those circuits and the error measurement that backs the
claim, together with the usual-strategy (Pauli-split) counterpart which does
carry a Trotter error when its strings are exponentiated one by one.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.applications.chemistry.fermion import FermionOperator
from repro.applications.chemistry.jordan_wigner import jordan_wigner_scb
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import circuit_unitary
from repro.core.direct_evolution import EvolutionOptions, evolve_fragment
from repro.core.pauli_evolution import pauli_trotter_step
from repro.exceptions import ProblemError
from repro.operators.hamiltonian import Hamiltonian
from repro.utils.linalg import spectral_norm_diff


def one_body_fragment(i: int, j: int, coefficient: float, num_modes: int) -> Hamiltonian:
    """``coefficient·(a†_i a_j + h.c.)`` as a (one-term) SCB Hamiltonian."""
    if i == j:
        op = FermionOperator({((i, True), (i, False)): coefficient})
    else:
        op = FermionOperator({((i, True), (j, False)): coefficient})
    return jordan_wigner_scb(op, num_modes)


def two_body_fragment(
    i: int, j: int, k: int, l: int, coefficient: float, num_modes: int
) -> Hamiltonian:
    """``coefficient·(a†_i a†_j a_k a_l + h.c.)`` as a (one-term) SCB Hamiltonian."""
    if len({i, j}) < 2 or len({k, l}) < 2:
        raise ProblemError("two-body transitions need distinct creation and annihilation pairs")
    op = FermionOperator({((i, True), (j, True), (k, False), (l, False)): coefficient})
    return jordan_wigner_scb(op, num_modes)


def transition_circuit(
    fragment_hamiltonian: Hamiltonian,
    time: float,
    *,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """Exact circuit of one gathered electronic transition (Fig. 11 / Fig. 12)."""
    fragments = fragment_hamiltonian.hermitian_fragments()
    circuit = QuantumCircuit(fragment_hamiltonian.num_qubits, "electronic-transition")
    for fragment in fragments:
        circuit.compose(evolve_fragment(fragment, time, options=options))
    return circuit


def transition_exactness_error(
    fragment_hamiltonian: Hamiltonian,
    time: float,
    *,
    options: EvolutionOptions | None = None,
) -> float:
    """Spectral-norm error of the transition circuit against ``exp(-i t H)``.

    Should be numerically zero when the fragment is a single gathered term —
    the "implemented without error" statement of Section V-B.1.
    """
    circuit = transition_circuit(fragment_hamiltonian, time, options=options)
    exact = expm(-1j * time * fragment_hamiltonian.matrix())
    return spectral_norm_diff(circuit_unitary(circuit), exact)


def transition_pauli_split_error(fragment_hamiltonian: Hamiltonian, time: float) -> float:
    """Error of the usual strategy on the same fragment (Pauli strings exponentiated
    sequentially in a single first-order step)."""
    pauli = fragment_hamiltonian.to_pauli()
    circuit = pauli_trotter_step(pauli, time, num_qubits=fragment_hamiltonian.num_qubits)
    exact = expm(-1j * time * fragment_hamiltonian.matrix())
    return spectral_norm_diff(circuit_unitary(circuit), exact)


def transition_gate_counts(
    fragment_hamiltonian: Hamiltonian, time: float = 0.1
) -> dict[str, dict[str, int]]:
    """Gate-count comparison (direct vs usual) for one transition fragment."""
    from repro.analysis.gate_counts import gate_count_report

    direct = transition_circuit(fragment_hamiltonian, time)
    usual = pauli_trotter_step(
        fragment_hamiltonian.to_pauli(), time, num_qubits=fragment_hamiltonian.num_qubits
    )
    # Logical (pre-decomposition) counts: this is the level at which the paper
    # states "one rotation per transition"; transpiled counts are available
    # through repro.analysis.compare_strategies.
    return {
        "direct": gate_count_report(direct).as_dict(),
        "usual": gate_count_report(usual).as_dict(),
    }


def number_conservation_error(
    fragment_hamiltonian: Hamiltonian, time: float, initial_index: int
) -> float:
    """How much the circuit changes the total particle number (should be ~0).

    Electronic transitions conserve the electron count; this is a physical
    sanity check on the circuit construction, evaluated on a computational
    basis state of definite particle number.
    """
    from repro.applications.chemistry.jordan_wigner import total_number_operator
    from repro.circuits.statevector import Statevector

    n = fragment_hamiltonian.num_qubits
    state = Statevector(initial_index, n)
    evolved = state.evolve(transition_circuit(fragment_hamiltonian, time))
    number_op = total_number_operator(n).matrix(sparse=True)
    before = float(np.real(np.vdot(state.data, number_op @ state.data)))
    after = float(np.real(np.vdot(evolved.data, number_op @ evolved.data)))
    return abs(after - before)
