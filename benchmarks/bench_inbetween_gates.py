"""E12 — Figs. 11-24 and 26: in-between-qubit gates and fermionic primitives.

Regenerates the appendix constructions: the e^{itA1}/e^{itA2} hopping and
double-excitation gates with their parity-controlled embeddings (Figs. 11-12),
the named two-qubit gates (Figs. 13-19), their controlled variants
(Figs. 20-22), the fermionic SWAP (Figs. 23-24) and the generic
``C^nU{|a⟩;|b⟩}`` of Fig. 26 — every one verified against its exact matrix.
"""

import numpy as np
from scipy.linalg import expm

from benchmarks.conftest import print_table
from repro.circuits import circuit_unitary
from repro.circuits.standard_gates import FSWAP
from repro.core import (
    controlled_exp_a1,
    cr_x_pair_creation,
    cr_y_between,
    cr_z_between,
    exp_a1_gate,
    exp_a2_gate,
    exp_b_gate,
    fswap_gate,
    pm_controlled_exp_a1,
    pp_gate,
    two_state_gate,
    two_state_gate_matrix,
)
from repro.operators import SCBTerm
from repro.utils.linalg import spectral_norm_diff


def _gate_suite():
    theta, time = 0.73, 0.31
    a1 = SCBTerm.from_label("ds", 1.0).hermitian_matrix()
    pair = SCBTerm.from_label("dd", 1.0).hermitian_matrix()
    a2 = SCBTerm.from_label("ddss", 1.0).hermitian_matrix()
    suite = [
        ("PP{|01>;|10>} (Fig.13)", pp_gate(theta, 0, 1, 2),
         np.diag([1, np.exp(1j * theta), np.exp(1j * theta), 1])),
        ("CRZ{|01>;|10>} (Fig.14)", cr_z_between(theta, 0, 1, 2),
         np.diag([1, np.exp(-1j * theta / 2), np.exp(1j * theta / 2), 1])),
        ("e^{-itA1} (Fig.15)", exp_a1_gate(time, 0, 1, 2), expm(-1j * time * a1)),
        ("CRY{|01>;|10>} (Fig.16)", cr_y_between(theta, 0, 1, 2), None),
        ("CRX{|00>;|11>} (Fig.17)", cr_x_pair_creation(theta, 0, 1, 2),
         expm(-1j * (theta / 2) * pair)),
        ("e^{-iB} (Fig.18)", exp_b_gate(0.4, 0.7, 0, 1, 2), expm(-1j * (0.4 * a1 + 0.7 * pair))),
        ("e^{-itA2} (Fig.19)", exp_a2_gate(time, (0, 1, 2, 3), 4), expm(-1j * time * a2)),
        ("C-e^{-itA1} (Fig.20)", controlled_exp_a1(time, 0, 1, 2, 3),
         np.kron(np.diag([1, 0]), np.eye(4)) + np.kron(np.diag([0, 1]), expm(-1j * time * a1))),
        ("e^{∓itA1} (Fig.21)", pm_controlled_exp_a1(time, 0, 1, 2, 3),
         np.kron(np.diag([1, 0]), expm(-1j * time * a1))
         + np.kron(np.diag([0, 1]), expm(1j * time * a1))),
        ("FSWAP (Fig.23-24)", fswap_gate(0, 1, 2), FSWAP),
    ]
    return suite


def test_appendix_gate_suite(benchmark):
    suite = benchmark(_gate_suite)
    rows = []
    for name, circuit, target in suite:
        if target is None:
            error = 0.0  # CRY is checked structurally in the unit tests
        else:
            error = spectral_norm_diff(circuit_unitary(circuit), target)
        counts = circuit.count_ops()
        rows.append([name, circuit.size(), counts.get("cx", 0) + counts.get("cz", 0),
                     circuit.num_rotation_gates(), f"{error:.1e}"])
        assert error < 1e-9
    print_table(
        "Appendix gate suite (Figs. 13-24)",
        ["gate", "size", "CX/CZ", "rotations", "error"],
        rows,
    )


def test_fig26_generic_two_state_gate(benchmark):
    """Fig. 26: an arbitrary single-qubit gate applied between |1222> and |1145>."""
    rng = np.random.default_rng(4)
    raw = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    unitary, _ = np.linalg.qr(raw)

    circuit = benchmark(lambda: two_state_gate(unitary, 1222, 1145, 11))
    from repro.circuits import Statevector

    out_a = Statevector(1222, 11).evolve(circuit).data
    out_b = Statevector(1145, 11).evolve(circuit).data
    assert abs(out_a[1222] - unitary[0, 0]) < 1e-9
    assert abs(out_a[1145] - unitary[1, 0]) < 1e-9
    assert abs(out_b[1222] - unitary[0, 1]) < 1e-9
    assert abs(out_b[1145] - unitary[1, 1]) < 1e-9
    print(f"\nFig. 26 C^nU{{|1222⟩;|1145⟩}}: size {circuit.size()}, "
          f"CX count {circuit.count_ops().get('cx', 0)}, depth {circuit.depth()}")


def test_small_two_state_gate_exhaustive(benchmark):
    """Dense verification of the generic gate on 4 qubits for several state pairs."""
    rng = np.random.default_rng(6)
    raw = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    unitary, _ = np.linalg.qr(raw)
    pairs = [(3, 12), (0, 15), (5, 6), (1, 14), (7, 8)]

    def build():
        worst = 0.0
        for a, b in pairs:
            circuit = two_state_gate(unitary, a, b, 4)
            target = two_state_gate_matrix(unitary, a, b, 4)
            worst = max(worst, spectral_norm_diff(circuit_unitary(circuit), target))
        return worst

    worst = benchmark(build)
    assert worst < 1e-9
    print(f"\nGeneric C^nU on 4 qubits, {len(pairs)} state pairs: worst error {worst:.1e}")
