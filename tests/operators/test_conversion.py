"""Unit tests for SCB <-> Pauli conversions (Section II-B.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.operators import (
    PauliOperator,
    PauliString,
    SCBTerm,
    conversion_is_exact,
    formalism_switch_term_count,
    hermitian_pair_to_pauli,
    number_term_to_z_strings,
    pauli_operator_to_scb,
    pauli_string_to_scb,
    pauli_term_count,
    scb_term_to_pauli,
    scb_terms_to_pauli,
    z_string_to_number_terms,
)

scb_labels = st.text(alphabet="IXYZnmsd", min_size=1, max_size=5)


class TestSCBToPauli:
    def test_term_count_power_of_two(self):
        term = SCBTerm.from_label("nsdXm")
        assert pauli_term_count(term) == 2 ** 4

    def test_fig2_term_count_is_2048(self):
        term = SCBTerm.from_label("nmmXYdnsssdYZds")
        assert pauli_term_count(term) == 2048

    def test_expansion_matches_matrix(self):
        term = SCBTerm.from_label("nsY", 0.7 - 0.1j)
        pauli = scb_term_to_pauli(term)
        np.testing.assert_allclose(pauli.matrix(num_qubits=3), term.matrix(), atol=1e-12)

    def test_pure_pauli_term_is_single_string(self):
        pauli = scb_term_to_pauli(SCBTerm.from_label("XZI", 2.0))
        assert pauli.num_terms == 1
        assert pauli["XZI"] == pytest.approx(2.0)

    def test_sum_of_terms(self):
        terms = [SCBTerm.from_label("nI", 1.0), SCBTerm.from_label("In", 1.0)]
        pauli = scb_terms_to_pauli(terms)
        np.testing.assert_allclose(
            pauli.matrix(num_qubits=2), sum(t.matrix() for t in terms), atol=1e-12
        )

    def test_hermitian_pair(self):
        term = SCBTerm.from_label("sd", 0.5 + 0.5j)
        pauli = hermitian_pair_to_pauli(term)
        assert pauli.is_hermitian()
        np.testing.assert_allclose(
            pauli.matrix(num_qubits=2), term.hermitian_matrix(), atol=1e-12
        )

    @given(scb_labels)
    def test_conversion_is_exact_property(self, label):
        assert conversion_is_exact(SCBTerm.from_label(label, 0.3 - 1.2j))


class TestPauliToSCB:
    def test_single_string_expansion_count(self):
        terms = pauli_string_to_scb(PauliString("XY"), 1.0)
        assert len(terms) == 4

    def test_expansion_matches_matrix(self):
        string = PauliString("XZY")
        terms = pauli_string_to_scb(string, -0.7)
        total = sum(t.matrix() for t in terms)
        np.testing.assert_allclose(total, -0.7 * string.matrix(), atol=1e-12)

    def test_operator_expansion_merges(self):
        op = PauliOperator({"XZ": 1.0, "YI": 0.5j})
        terms = pauli_operator_to_scb(op)
        total = sum(t.matrix() for t in terms)
        np.testing.assert_allclose(total, op.matrix(), atol=1e-12)

    def test_roundtrip(self):
        original = SCBTerm.from_label("nsm", 0.9)
        pauli = scb_term_to_pauli(original)
        terms = pauli_operator_to_scb(pauli)
        total = sum(t.matrix() for t in terms)
        np.testing.assert_allclose(total, original.matrix(), atol=1e-12)


class TestBooleanSpinExpansions:
    def test_z_string_to_number_terms_matrix(self):
        terms = z_string_to_number_terms((0, 1), 2, 1.0)
        total = sum(t.matrix() for t in terms)
        np.testing.assert_allclose(total, np.diag([1, -1, -1, 1]), atol=1e-12)

    def test_z_string_term_count(self):
        assert len(z_string_to_number_terms((0, 1, 2), 3)) == 8

    def test_number_term_to_z_strings_matrix(self):
        op = number_term_to_z_strings((0, 2), 3, 2.0)
        expected = 2.0 * SCBTerm.from_label("nIn").matrix()
        np.testing.assert_allclose(op.matrix(num_qubits=3), expected, atol=1e-12)

    def test_appendix_nnn_expansion(self):
        # n̂n̂n̂ = (1/8)(I - ZZZ + ZZ_ij + ZZ_ik + ZZ_jk - Z_i - Z_j - Z_k)
        op = number_term_to_z_strings((0, 1, 2), 3, 1.0)
        assert op["III"] == pytest.approx(1 / 8)
        assert op["ZZZ"] == pytest.approx(-1 / 8)
        assert op["ZZI"] == pytest.approx(1 / 8)
        assert op["ZII"] == pytest.approx(-1 / 8)

    def test_formalism_switch_count(self):
        assert formalism_switch_term_count(1) == 1
        assert formalism_switch_term_count(3) == 7
        assert formalism_switch_term_count(10) == 1023

    def test_formalism_switch_negative(self):
        from repro.exceptions import ConversionError

        with pytest.raises(ConversionError):
            formalism_switch_term_count(-1)
