"""Unit tests for the composite-gate decompositions (parity ladders, MCX, MCP, ...)."""

import math

import numpy as np
import pytest

from repro.circuits import (
    QuantumCircuit,
    Statevector,
    ccp_decomposition,
    ccx_decomposition,
    ccz_decomposition,
    circuit_unitary,
    circuits_equivalent,
    controlled_unitary_abc,
    cx_ladder,
    cx_pyramid,
    euler_zyz,
    mc_rotation_decomposition,
    mcp_decomposition,
    mcx_decomposition,
    mcx_vchain,
    mcz_decomposition,
    undo_cx_pairs,
)
from repro.circuits.decompositions import cswap_decomposition
from repro.circuits.standard_gates import rz_matrix, ry_matrix
from repro.exceptions import DecompositionError


class TestParityLadders:
    def test_linear_ladder_cx_count(self):
        qc = QuantumCircuit(5)
        cx_ladder(qc, [0, 1, 2, 3], 4)
        assert qc.count_ops() == {"cx": 4}
        assert qc.depth() == 4

    def test_pyramid_same_count_lower_depth(self):
        linear = QuantumCircuit(8)
        cx_ladder(linear, list(range(7)), 7)
        pyramid = QuantumCircuit(8)
        pairs = cx_pyramid(pyramid, list(range(7)), 7)
        assert len(pairs) == 7
        assert pyramid.count_ops()["cx"] == linear.count_ops()["cx"]
        assert pyramid.depth() < linear.depth()

    def test_pyramid_parity_on_target(self, rng):
        # The parity of all qubits must end up on the target for every basis state.
        n = 6
        for _ in range(6):
            bits = rng.integers(0, 2, n)
            index = int("".join(map(str, bits)), 2)
            qc = QuantumCircuit(n)
            cx_pyramid(qc, list(range(n - 1)), n - 1)
            out = Statevector(index, n).evolve(qc)
            out_index = int(np.argmax(np.abs(out.data)))
            assert (out_index & 1) == (int(bits.sum()) & 1)

    def test_undo_cx_pairs_restores_identity(self):
        qc = QuantumCircuit(5)
        pairs = cx_pyramid(qc, [0, 1, 2, 3], 4)
        undo_cx_pairs(qc, pairs)
        np.testing.assert_allclose(circuit_unitary(qc), np.eye(32), atol=1e-12)


class TestEulerAndABC:
    def test_euler_reconstructs(self, random_unitary_2x2):
        alpha, beta, gamma, delta = euler_zyz(random_unitary_2x2)
        rebuilt = (
            np.exp(1j * alpha) * rz_matrix(beta) @ ry_matrix(gamma) @ rz_matrix(delta)
        )
        np.testing.assert_allclose(rebuilt, random_unitary_2x2, atol=1e-9)

    def test_euler_rejects_wrong_shape(self):
        with pytest.raises(DecompositionError):
            euler_zyz(np.eye(4))

    def test_controlled_unitary_abc(self, random_unitary_2x2):
        ref = QuantumCircuit(2)
        ref.mc_unitary(random_unitary_2x2, [0], [1])
        dec = controlled_unitary_abc(random_unitary_2x2, 0, 1, 2)
        assert circuits_equivalent(ref, dec)

    def test_abc_only_one_and_two_qubit_gates(self, random_unitary_2x2):
        dec = controlled_unitary_abc(random_unitary_2x2, 0, 1, 2)
        assert all(len(instr.qubits) <= 2 for instr in dec)


class TestToffoliFamily:
    def test_ccx(self):
        ref = QuantumCircuit(3)
        ref.ccx(0, 1, 2)
        assert circuits_equivalent(ref, ccx_decomposition(0, 1, 2, 3), up_to_global_phase=True)

    def test_ccz(self):
        ref = QuantumCircuit(3)
        ref.ccz(0, 1, 2)
        assert circuits_equivalent(ref, ccz_decomposition(0, 1, 2, 3))

    def test_ccp(self):
        ref = QuantumCircuit(3)
        ref.ccp(0.37, 0, 1, 2)
        assert circuits_equivalent(ref, ccp_decomposition(0.37, 0, 1, 2, 3))

    def test_cswap(self):
        ref = QuantumCircuit(3)
        ref.cswap(0, 1, 2)
        assert circuits_equivalent(ref, cswap_decomposition(0, 1, 2, 3), up_to_global_phase=True)

    def test_ccx_cx_count(self):
        assert ccx_decomposition(0, 1, 2, 3).count_ops()["cx"] == 6


class TestMultiControlled:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_mcx_all_ones(self, k):
        ref = QuantumCircuit(k + 1)
        ref.mcx(list(range(k)), k)
        dec = mcx_decomposition(list(range(k)), k, k + 1)
        assert circuits_equivalent(ref, dec, up_to_global_phase=True)

    @pytest.mark.parametrize("ctrl_state", [0, 1, 2, 5])
    def test_mcx_ctrl_state(self, ctrl_state):
        ref = QuantumCircuit(4)
        ref.mcx([0, 1, 2], 3, ctrl_state)
        dec = mcx_decomposition([0, 1, 2], 3, 4, ctrl_state)
        assert circuits_equivalent(ref, dec, up_to_global_phase=True)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_mcp(self, k):
        ref = QuantumCircuit(k + 1)
        ref.mcp(0.81, list(range(k)), k)
        dec = mcp_decomposition(0.81, list(range(k)), k, k + 1)
        assert circuits_equivalent(ref, dec)

    def test_mcz(self):
        ref = QuantumCircuit(4)
        ref.mcz([0, 1, 2], 3)
        dec = mcz_decomposition([0, 1, 2], 3, 4)
        assert circuits_equivalent(ref, dec)

    @pytest.mark.parametrize("axis", ["x", "y", "z"])
    def test_mc_rotation(self, axis):
        ref = QuantumCircuit(4)
        getattr(ref, f"mcr{axis}")(0.63, [0, 1, 2], 3, 0b011)
        dec = mc_rotation_decomposition(axis, 0.63, [0, 1, 2], 3, 4, 0b011)
        assert circuits_equivalent(ref, dec)

    def test_mc_rotation_invalid_axis(self):
        with pytest.raises(DecompositionError):
            mc_rotation_decomposition("w", 0.2, [0], 1, 2)

    def test_decompositions_contain_only_small_gates(self):
        dec = mcp_decomposition(0.3, [0, 1, 2, 3], 4, 5)
        assert all(len(instr.qubits) <= 2 for instr in dec)


class TestVChain:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_vchain_correct_on_zero_ancillas(self, k):
        num_anc = k - 2
        total = k + 1 + num_anc
        ref = QuantumCircuit(k + 1)
        ref.mcx(list(range(k)), k)
        dec = mcx_vchain(list(range(k)), k, list(range(k + 1, total)), total)
        # Compare action on the subspace where the ancillas are |0>.
        full = circuit_unitary(dec)
        dim = 1 << (k + 1)
        indices = [i << num_anc for i in range(dim)]
        block = full[np.ix_(indices, indices)]
        np.testing.assert_allclose(np.abs(block), np.abs(circuit_unitary(ref)), atol=1e-8)

    def test_vchain_two_qubit_count_linear(self):
        counts = []
        for k in (4, 6, 8):
            num_anc = k - 2
            total = k + 1 + num_anc
            dec = mcx_vchain(list(range(k)), k, list(range(k + 1, total)), total)
            counts.append(dec.num_two_qubit_gates())
        # 2k-3 Toffolis at 6 CX each -> linear growth with constant increment.
        assert counts[1] - counts[0] == counts[2] - counts[1]

    def test_vchain_requires_enough_ancillas(self):
        with pytest.raises(DecompositionError):
            mcx_vchain([0, 1, 2, 3], 4, [5], 7)

    def test_vchain_small_cases(self):
        ref = QuantumCircuit(3)
        ref.ccx(0, 1, 2)
        dec = mcx_vchain([0, 1], 2, [], 3)
        assert circuits_equivalent(ref, dec, up_to_global_phase=True)


class TestMCPAngleAccumulation:
    def test_mcp_pi_equals_mcz(self):
        a = mcp_decomposition(math.pi, [0, 1], 2, 3)
        b = mcz_decomposition([0, 1], 2, 3)
        assert circuits_equivalent(a, b)
