"""Unit tests for the DAG / layering utilities."""

from repro.circuits import QuantumCircuit, circuit_layers, critical_path_length
from repro.circuits.dag import circuit_dependency_graph


class TestLayers:
    def test_single_layer(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.h(1)
        qc.h(2)
        layers = circuit_layers(qc)
        assert layers.depth == 1
        assert layers.widths() == (3,)

    def test_sequential_layers(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        qc.cx(1, 0)
        qc.cx(0, 1)
        assert circuit_layers(qc).depth == 3

    def test_min_qubits_filter(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.h(1)
        assert circuit_layers(qc, min_qubits=2).depth == 1

    def test_depth_matches_circuit_depth(self, rng):
        from repro.circuits import random_circuit

        qc = random_circuit(5, 40, rng=rng)
        assert circuit_layers(qc).depth == qc.depth()


class TestDependencyGraph:
    def test_edges_follow_shared_qubits(self):
        qc = QuantumCircuit(3)
        qc.h(0)        # 0
        qc.cx(0, 1)    # 1 depends on 0
        qc.x(2)        # 2 independent
        qc.cx(1, 2)    # 3 depends on 1 and 2
        graph = circuit_dependency_graph(qc)
        assert set(graph.edges()) == {(0, 1), (1, 3), (2, 3)}

    def test_critical_path_equals_depth(self, rng):
        from repro.circuits import random_circuit

        qc = random_circuit(4, 30, rng=rng)
        assert critical_path_length(qc) == qc.depth()

    def test_empty_circuit(self):
        assert critical_path_length(QuantumCircuit(2)) == 0
