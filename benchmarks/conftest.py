"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it times the
relevant construction with pytest-benchmark, checks the qualitative claim the
paper makes about it (who wins, by roughly what factor, where the crossover
falls), and prints the reproduced rows/series so they can be copied into
EXPERIMENTS.md.
"""

from __future__ import annotations


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a small aligned table to stdout (shown with ``pytest -s`` or on failure)."""
    widths = [max(len(str(header[i])), *(len(str(row[i])) for row in rows)) for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
