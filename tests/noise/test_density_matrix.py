"""DensityMatrix kernels: agreement with statevector evolution and channel maths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import DensityMatrix, Statevector, random_circuit, simulate_density
from repro.exceptions import SimulationError
from repro.noise import (
    NoiseModel,
    amplitude_damping_channel,
    depolarizing_channel,
    phase_damping_channel,
)


class TestConstruction:
    def test_from_int(self):
        rho = DensityMatrix(2, 2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.probabilities()[2] == pytest.approx(1.0)

    def test_from_statevector_is_pure(self):
        state = Statevector(np.array([1, 1j]) / np.sqrt(2))
        rho = DensityMatrix(state)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.fidelity(state) == pytest.approx(1.0)

    def test_maximally_mixed(self):
        rho = DensityMatrix.maximally_mixed(3)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0 / 8.0)

    def test_memory_guard(self):
        with pytest.raises(SimulationError, match="limit"):
            DensityMatrix.zero_state(13)
        # Explicit override allows it in principle (use a small case to stay fast).
        assert DensityMatrix.zero_state(3, max_qubits=3).num_qubits == 3

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            DensityMatrix(np.eye(4) / 4, num_qubits=3)


class TestIdealEvolution:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_statevector_on_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_circuit(4, 25, rng=rng)
        psi = Statevector.zero_state(4).evolve(circuit)
        rho = DensityMatrix.zero_state(4).evolve(circuit)
        np.testing.assert_allclose(
            rho.data, np.outer(psi.data, psi.data.conj()), atol=1e-10
        )
        assert rho.fidelity(psi) == pytest.approx(1.0, abs=1e-10)
        assert rho.purity() == pytest.approx(1.0, abs=1e-10)

    def test_global_phase_is_irrelevant_for_rho(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.global_phase = 0.73
        psi = Statevector.zero_state(1).evolve(circuit)
        rho = DensityMatrix.zero_state(1).evolve(circuit)
        np.testing.assert_allclose(rho.data, np.outer(psi.data, psi.data.conj()), atol=1e-12)

    def test_evolve_matrix_subset(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        rho = DensityMatrix.zero_state(2).evolve_matrix(x, [1])
        assert rho.probabilities()[1] == pytest.approx(1.0)

    def test_simulate_density_convenience(self):
        rng = np.random.default_rng(3)
        circuit = random_circuit(3, 10, rng=rng)
        rho = simulate_density(circuit)
        assert rho.trace() == pytest.approx(1.0, abs=1e-10)


class TestChannels:
    def test_apply_channel_matches_dense_reference(self):
        rng = np.random.default_rng(11)
        circuit = random_circuit(3, 12, rng=rng)
        rho = DensityMatrix.zero_state(3).evolve(circuit)
        channel = amplitude_damping_channel(0.35)
        fast = rho.apply_channel(channel, [1])
        # Dense reference: embed the Kraus operators on the full register.
        eye = np.eye(2, dtype=complex)
        expected = np.zeros_like(rho.data)
        for op in channel.kraus:
            full = np.kron(np.kron(eye, op), eye)
            expected += full @ rho.data @ full.conj().T
        np.testing.assert_allclose(fast.data, expected, atol=1e-12)

    def test_full_depolarizing_gives_maximally_mixed(self):
        rho = DensityMatrix.zero_state(1).apply_channel(depolarizing_channel(1.0), [0])
        np.testing.assert_allclose(rho.data, np.eye(2) / 2, atol=1e-12)

    def test_trace_preserved_through_noisy_circuit(self):
        rng = np.random.default_rng(5)
        circuit = random_circuit(3, 20, rng=rng)
        model = NoiseModel.uniform_depolarizing(0.02)
        rho = DensityMatrix.zero_state(3).evolve(circuit, noise_model=model)
        assert rho.trace() == pytest.approx(1.0, abs=1e-9)
        assert rho.is_hermitian()
        assert rho.purity() < 1.0

    def test_phase_damping_kills_coherences_only(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(1)
        circuit.h(0)
        model = NoiseModel().add_default_error(phase_damping_channel(1.0), num_qubits=1)
        rho = DensityMatrix.zero_state(1).evolve(circuit, noise_model=model)
        # Populations survive, coherences vanish.
        np.testing.assert_allclose(np.diag(rho.data), [0.5, 0.5], atol=1e-12)
        assert abs(rho.data[0, 1]) < 1e-12

    def test_sample_counts_seeded_and_complete(self):
        rho = DensityMatrix.maximally_mixed(2)
        rng_a = np.random.default_rng(21)
        rng_b = np.random.default_rng(21)
        counts_a = rho.sample_counts(1000, rng_a)
        counts_b = rho.sample_counts(1000, rng_b)
        assert counts_a == counts_b
        assert sum(counts_a.values()) == 1000
        assert set(counts_a) <= {"00", "01", "10", "11"}


class TestNoiseModel:
    def test_ideal_model(self):
        model = NoiseModel.ideal()
        assert model.is_ideal
        assert not model.has_gate_noise
        assert model.channels_for("cx", (0, 1)) == []

    def test_gate_specific_beats_default(self):
        gate_channel = depolarizing_channel(0.3, num_qubits=2)
        default = depolarizing_channel(0.01, num_qubits=2)
        model = (
            NoiseModel()
            .add_gate_error(gate_channel, "cx")
            .add_default_error(default, num_qubits=2)
        )
        placed = model.channels_for("cx", (0, 1))
        assert placed == [(gate_channel, (0, 1))]
        assert model.channels_for("cz", (0, 1)) == [(default, (0, 1))]

    def test_single_qubit_channel_broadcasts_over_wide_gates(self):
        channel = depolarizing_channel(0.05)
        model = NoiseModel().add_default_error(channel, num_qubits=2)
        # 1q channel attached to 2q gates: applied per qubit, in gate order.
        model2 = NoiseModel().add_gate_error(channel, "cx")
        assert model2.channels_for("cx", (2, 0)) == [(channel, (2,)), (channel, (0,))]
        # A channel matching the gate width acts on the full qubit tuple.
        model3 = NoiseModel().add_default_error(depolarizing_channel(0.05, 2), num_qubits=2)
        assert model3.channels_for("cx", (2, 0))[0][1] == (2, 0)

    def test_oversized_channel_rejected(self):
        from repro.noise import NoiseError

        model = NoiseModel().add_gate_error(depolarizing_channel(0.1, 2), "h")
        with pytest.raises(NoiseError, match="cannot place"):
            model.channels_for("h", (0,))

    def test_uniform_depolarizing_factory(self):
        model = NoiseModel.uniform_depolarizing(0.001, readout=0.01)
        assert model.has_gate_noise
        assert model.readout_error is not None
        assert len(model.channels_for("h", (0,))) == 1
        assert len(model.channels_for("cx", (0, 1))) == 1
