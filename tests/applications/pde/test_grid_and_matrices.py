"""Unit tests for grids and classical finite-difference matrices (Fig. 7, Eqs. 19-22)."""

import numpy as np
import pytest

from repro.applications.pde import (
    CartesianGrid,
    adjacency_1d,
    double_layer_grid,
    first_derivative_1d,
    laplacian_matrix,
    line_grid,
    paper_double_layer_matrix,
    paper_two_line_matrix,
    poisson_system,
    second_derivative_1d,
    two_line_grid,
)
from repro.exceptions import ProblemError


class TestGrid:
    def test_fig7_grids(self):
        assert line_grid(8).shape == (8,)
        assert two_line_grid(8).shape == (2, 8)
        assert double_layer_grid(8).shape == (2, 2, 8)

    def test_qubit_counts(self):
        grid = double_layer_grid(8)
        assert grid.qubits_per_dimension == (1, 1, 3)
        assert grid.num_qubits == 5
        assert grid.num_nodes == 32

    def test_extent_must_be_power_of_two(self):
        with pytest.raises(Exception):
            CartesianGrid((6,))

    def test_spacing_positive(self):
        with pytest.raises(ProblemError):
            CartesianGrid((4,), spacing=0.0)

    def test_flat_index_roundtrip(self):
        grid = CartesianGrid((2, 4, 8))
        for flat in (0, 5, 17, 63):
            assert grid.flat_index(grid.coordinates(flat)) == flat

    def test_flat_index_out_of_range(self):
        grid = line_grid(4)
        with pytest.raises(ProblemError):
            grid.flat_index((4,))
        with pytest.raises(ProblemError):
            grid.coordinates(4)

    def test_neighbors_interior_and_boundary(self):
        grid = two_line_grid(4)
        interior = grid.flat_index((0, 1))
        assert sorted(grid.neighbors(interior)) == sorted(
            [grid.flat_index((0, 0)), grid.flat_index((0, 2)), grid.flat_index((1, 1))]
        )
        corner = grid.flat_index((0, 0))
        assert len(grid.neighbors(corner)) == 2

    def test_node_positions_shape(self):
        grid = two_line_grid(4, spacing=0.5)
        positions = grid.node_positions()
        assert positions.shape == (8, 2)
        assert positions[:, 1].max() == pytest.approx(1.5)


class TestOneDimensionalOperators:
    def test_adjacency_dirichlet(self):
        matrix = adjacency_1d(4).toarray()
        expected = np.array(
            [[0, 1, 0, 0], [1, 0, 1, 0], [0, 1, 0, 1], [0, 0, 1, 0]], dtype=float
        )
        np.testing.assert_allclose(matrix, expected)

    def test_adjacency_periodic(self):
        matrix = adjacency_1d(4, boundary="periodic").toarray()
        assert matrix[0, 3] == 1 and matrix[3, 0] == 1

    def test_adjacency_neumann_symmetric(self):
        matrix = adjacency_1d(4, boundary="neumann").toarray()
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix[0, 1] == 2

    def test_adjacency_invalid_boundary(self):
        with pytest.raises(ProblemError):
            adjacency_1d(4, boundary="robin")

    def test_second_derivative_row_sum(self):
        matrix = second_derivative_1d(8, spacing=0.5).toarray()
        # interior rows sum to zero: (1 - 2 + 1)/d²
        np.testing.assert_allclose(matrix[3].sum(), 0.0, atol=1e-12)
        assert matrix[3, 3] == pytest.approx(-2.0 / 0.25)

    def test_first_derivative_antisymmetric_interior(self):
        matrix = first_derivative_1d(8).toarray()
        assert matrix[3, 4] == pytest.approx(0.5)
        assert matrix[3, 2] == pytest.approx(-0.5)

    def test_first_derivative_periodic_wrap(self):
        matrix = first_derivative_1d(4, boundary="periodic").toarray()
        assert matrix[0, 3] == pytest.approx(-0.5)


class TestLaplacians:
    def test_1d_laplacian_eigenvalues(self):
        n = 8
        lap = laplacian_matrix(line_grid(n)).toarray()
        eigenvalues = np.sort(np.linalg.eigvalsh(lap))
        expected = np.sort(
            [-(2 - 2 * np.cos(np.pi * k / (n + 1))) for k in range(1, n + 1)]
        )
        np.testing.assert_allclose(eigenvalues, expected, atol=1e-10)

    def test_2d_laplacian_is_kron_sum(self):
        grid = two_line_grid(4)
        lap = laplacian_matrix(grid).toarray()
        d2_line = second_derivative_1d(4).toarray()
        d2_pair = second_derivative_1d(2).toarray()
        expected = np.kron(d2_pair, np.eye(4)) + np.kron(np.eye(2), d2_line)
        np.testing.assert_allclose(lap, expected, atol=1e-12)

    def test_3d_laplacian_diagonal(self):
        grid = double_layer_grid(4)
        lap = laplacian_matrix(grid).toarray()
        assert lap[0, 0] == pytest.approx(-6.0)

    def test_poisson_system_shapes(self):
        grid = line_grid(8)
        matrix, rhs = poisson_system(grid, np.ones(8))
        assert matrix.shape == (8, 8)
        np.testing.assert_allclose(rhs, -np.ones(8))

    def test_poisson_system_wrong_source_length(self):
        with pytest.raises(ProblemError):
            poisson_system(line_grid(8), np.ones(4))


class TestPaperMatrices:
    def test_two_line_matrix_structure(self):
        matrix = paper_two_line_matrix(4, -4, -4, 1, 1, 1)
        assert matrix.shape == (8, 8)
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix[0, 4] == 1  # line coupling
        assert matrix[0, 1] == 1  # intra-line coupling
        assert matrix[0, 0] == -4

    def test_two_line_matrix_equals_paper_laplacian_case(self):
        # With the Eq. 22 coefficients the two-line matrix is the grid Laplacian
        # up to the missing inter-line diagonal contribution convention.
        matrix = paper_two_line_matrix(4, -4, -4, 1, 1, 1)
        lap = laplacian_matrix(two_line_grid(4)).toarray()
        # Same off-diagonal structure.
        np.testing.assert_allclose(np.triu(matrix, 1), np.triu(lap, 1), atol=1e-12)

    def test_double_layer_matrix_structure(self):
        matrix = paper_double_layer_matrix(4, (-6,) * 4, (1,) * 4, (1, 1), (1, 1))
        assert matrix.shape == (16, 16)
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix[0, 8] == 1   # layer coupling (ak13)
        assert matrix[0, 4] == 1   # line coupling (aj12)
