"""Context-var span tracing with per-process JSON-lines trace files.

A *span* is one timed region of the execution stack — a compile, a kernel
evolution, a cache lookup, a shared-memory export.  Spans nest through a
:mod:`contextvars` variable, so every span records its parent and a whole
sweep reconstructs as a tree: ``session.execute`` → ``pool.map_specs`` →
``execute.point`` → ``execute.evolve`` → ``compile.build`` — across process
boundaries, because the ``(trace_id, span_id)`` pair travels into pool
workers as a chunk argument and into service workers inside the claim
response (:func:`current_trace_context` / :func:`trace_context`).

Tracing is **off by default** and compiled to a no-op: :func:`span` returns a
shared :class:`_NullSpan` singleton unless ``REPRO_TRACE`` is truthy (or
:func:`configure` enabled it), so the instrumented hot paths pay one env-check
plus a dict build.  When enabled, every finished span appends one JSON line
to this process's trace file under ``REPRO_TRACE_DIR`` (default
``<cache root>/traces``) through a :class:`TraceWriter` that is

* **process-safe** — one file per pid, reopened after ``fork`` (the writer
  notices the pid change), so concurrent writers never interleave lines;
* **thread-safe** — daemon worker threads share one file under a lock, one
  unbuffered write per line;
* **crash-tolerant** — a SIGKILLed worker leaves at most one torn final
  line, which the reader skips (see :mod:`repro.telemetry.report`).

``python -m repro.telemetry report <dir>`` merges the per-process files back
into the per-phase breakdown.
"""

from __future__ import annotations

import contextvars
import json
import os
import secrets
import threading
import time
from pathlib import Path

#: Truthy values of ``REPRO_TRACE`` switch tracing on.
TRACE_ENV = "REPRO_TRACE"

#: Directory the per-process trace files land in.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

_TRUTHY = ("1", "true", "on", "yes")

# os.environ.get is a Python-level MutableMapping call (~1 µs) — too slow for
# a check that sits on every instrumented hot path.  On POSIX CPython the
# backing dict is reachable and stays in sync with putenv/monkeypatch, so the
# disabled path costs one plain dict lookup; anywhere else, fall back.
_ENV_KEY = TRACE_ENV.encode() if os.name == "posix" else TRACE_ENV
_ENV_DATA = getattr(os.environ, "_data", None) if os.name == "posix" else None


def _trace_env_value() -> "str | None":
    if _ENV_DATA is not None:
        raw = _ENV_DATA.get(_ENV_KEY)
        return None if raw is None else os.fsdecode(raw)
    return os.environ.get(TRACE_ENV)

#: The active span as a ``(trace_id, span_id)`` pair (``None``: no span).
_current: "contextvars.ContextVar[tuple[str, str] | None]" = contextvars.ContextVar(
    "repro_trace_span", default=None
)

# Programmatic overrides of the environment (None: follow the env).
_enabled_override: "bool | None" = None
_dir_override: "Path | None" = None


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def tracing_enabled() -> bool:
    """Whether spans record anything (``REPRO_TRACE`` or :func:`configure`)."""
    if _enabled_override is not None:
        return _enabled_override
    env = _trace_env_value()
    if not env:  # unset/empty: the hot production path — no string work
        return False
    return env.strip().lower() in _TRUTHY


def trace_dir() -> Path:
    """Where trace files go: the override, ``$REPRO_TRACE_DIR``, or the default."""
    if _dir_override is not None:
        return _dir_override
    env = os.environ.get(TRACE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    from repro.runtime.cache import default_cache_dir

    return default_cache_dir() / "traces"


def configure(
    enabled: "bool | None" = None, directory: "str | Path | None" = None
) -> None:
    """Programmatic override of ``REPRO_TRACE``/``REPRO_TRACE_DIR``.

    Overrides apply to *this* process (and, under ``fork``, to workers forked
    afterwards); set the environment variables instead when workers may be
    spawned fresh.  ``None`` arguments leave the corresponding setting alone.
    """
    global _enabled_override, _dir_override
    if enabled is not None:
        _enabled_override = bool(enabled)
    if directory is not None:
        _dir_override = Path(directory).expanduser()


def reset() -> None:
    """Drop every override, close the writer and return to env-driven config."""
    global _enabled_override, _dir_override
    _enabled_override = None
    _dir_override = None
    _writer.close()
    _current.set(None)


# ---------------------------------------------------------------------------
# The trace writer
# ---------------------------------------------------------------------------


class TraceWriter:
    """Append-only JSONL writer: one file per process, one write per line.

    The file is opened lazily (first span) and unbuffered, so every record is
    a single ``write(2)`` and a crash can tear at most the final line.  After
    a ``fork`` the inherited writer notices the pid change and opens a fresh
    file — two processes never share a descriptor.
    """

    def __init__(self, directory: "str | Path | None" = None):
        self._directory = Path(directory).expanduser() if directory else None
        self._lock = threading.Lock()
        self._file = None
        self._pid: "int | None" = None
        self.path: "Path | None" = None

    def _ensure(self):
        pid = os.getpid()
        if self._file is None or self._pid != pid:
            if self._file is not None:  # forked child: drop the parent's handle
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - close of a dead fd
                    pass
            directory = self._directory if self._directory is not None else trace_dir()
            directory.mkdir(parents=True, exist_ok=True)
            self.path = directory / f"trace-{pid}-{secrets.token_hex(4)}.jsonl"
            self._file = open(self.path, "ab", buffering=0)
            self._pid = pid
        return self._file

    def write(self, record: dict) -> None:
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        with self._lock:
            try:
                self._ensure().write(line)
            except (OSError, ValueError):
                # A full disk or unwritable directory must never take the
                # computation down with it; the trace is best-effort.
                pass

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - already gone
                    pass
            self._file = None
            self._pid = None


#: The process-wide writer every span records through.
_writer = TraceWriter()


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class _NullSpan:
    """The disabled path: a shared, do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region: name, parent link, wall/CPU time, free-form attrs."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
        "_start_wall",
        "_start_perf",
        "_start_cpu",
    )

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = secrets.token_hex(8)
        self.trace_id: "str | None" = None
        self.parent_id: "str | None" = None
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach attributes mid-span (e.g. an outcome discovered late)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = _current.get()
        if parent is not None:
            self.trace_id, self.parent_id = parent
        else:
            self.trace_id = secrets.token_hex(16)
        self._token = _current.set((self.trace_id, self.span_id))
        self._start_wall = time.time()
        self._start_cpu = time.process_time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start_perf
        cpu = time.process_time() - self._start_cpu
        if self._token is not None:
            _current.reset(self._token)
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "pid": os.getpid(),
            "start": round(self._start_wall, 6),
            "wall": round(wall, 9),
            "cpu": round(cpu, 9),
        }
        if exc_type is not None:
            record["error"] = True
        if self.attrs:
            record["attrs"] = {str(k): _jsonable(v) for k, v in self.attrs.items()}
        _writer.write(record)
        return False


def span(name: str, **attrs):
    """A context manager timing one region — or the no-op when tracing is off.

    ::

        with span("execute.evolve", backend="kernel") as sp:
            value = program.run(...)
            sp.set(dim=value.dim)
    """
    if not tracing_enabled():
        return _NULL_SPAN
    return Span(name, attrs)


# ---------------------------------------------------------------------------
# Cross-process propagation
# ---------------------------------------------------------------------------


def current_trace_context() -> "dict | None":
    """The active ``{"trace_id", "span_id"}`` to ship to a worker, or ``None``."""
    if not tracing_enabled():
        return None
    active = _current.get()
    if active is None:
        return None
    return {"trace_id": active[0], "span_id": active[1]}


class _ContextHandle:
    __slots__ = ("_token",)

    def __init__(self, token):
        self._token = token

    def __enter__(self) -> "_ContextHandle":
        return self

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _current.reset(self._token)
        return False


def trace_context(context: "dict | None"):
    """Adopt a remote parent span (worker side of :func:`current_trace_context`).

    Spans opened inside the ``with`` block parent onto the shipped span, so a
    pool or service worker's work attaches to the submitting session's trace.
    A ``None``/empty context (or tracing disabled) is a no-op.
    """
    if not context or not tracing_enabled():
        return _ContextHandle(None)
    trace_id = context.get("trace_id")
    span_id = context.get("span_id")
    if not trace_id or not span_id:
        return _ContextHandle(None)
    return _ContextHandle(_current.set((str(trace_id), str(span_id))))
