"""Poisson-equation workflows: classical solve, Hamiltonian simulation, block encoding.

Ties the finite-difference machinery together:

* :func:`solve_poisson` — classical sparse solve, the ground truth the
  examples compare against;
* :func:`poisson_block_encoding` — block encoding of the (negated, positive
  semi-definite) FD matrix built from its SCB decomposition, the quantum
  object an HHL/QSP-style solver would query;
* :func:`poisson_evolution_circuit` — Hamiltonian simulation ``e^{-i t A}`` of
  the same matrix, the query a Schrödingerisation / QPE-style approach needs;
* :func:`dilated_qlsp_hamiltonian` — the non-Hermitian-safe dilation of
  Section V-E applied to the FD matrix for QLSP-style processing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.applications.pde.boundary import DirichletCondition, apply_dirichlet
from repro.applications.pde.decomposition import grid_laplacian_hamiltonian
from repro.applications.pde.finite_difference import laplacian_matrix, poisson_system
from repro.applications.pde.grid import CartesianGrid
from repro.circuits.circuit import QuantumCircuit
from repro.core.block_encoding import hamiltonian_block_encoding
from repro.core.direct_evolution import EvolutionOptions
from repro.core.lcu import BlockEncoding
from repro.exceptions import ProblemError
from repro.operators.dilation import dilate_hamiltonian
from repro.operators.hamiltonian import Hamiltonian


@dataclass
class PoissonSolution:
    """Classical reference solution of a Poisson problem."""

    grid: CartesianGrid
    solution: np.ndarray
    residual_norm: float


def solve_poisson(
    grid: CartesianGrid,
    source: np.ndarray,
    *,
    boundary: str = "dirichlet",
    dirichlet_values: list[DirichletCondition] | None = None,
    alpha: float = 1.0,
) -> PoissonSolution:
    """Solve ``α Δ f = -source`` classically on the grid.

    With pure (homogeneous) Dirichlet data the FD Laplacian is negative
    definite and directly invertible; explicit Dirichlet values can be pinned
    with ``dirichlet_values``.
    """
    matrix, rhs = poisson_system(grid, source, boundary=boundary, alpha=alpha)
    if boundary in ("periodic", "neumann") and not dirichlet_values:
        # The pure Neumann/periodic operator is singular (constant nullspace);
        # pin the first node to make the system well-posed.
        dirichlet_values = [DirichletCondition(0, 0.0)]
    if dirichlet_values:
        matrix, rhs = apply_dirichlet(matrix, rhs, dirichlet_values)
    solution = spla.spsolve(matrix.tocsr(), rhs)
    residual = float(np.linalg.norm(matrix @ solution - rhs))
    return PoissonSolution(grid=grid, solution=np.asarray(solution), residual_norm=residual)


def poisson_operator(grid: CartesianGrid, *, boundary: str = "dirichlet") -> Hamiltonian:
    """The FD Laplacian of the grid as SCB terms (delegates to the decomposition)."""
    return grid_laplacian_hamiltonian(grid, boundary=boundary)


def poisson_block_encoding(
    grid: CartesianGrid, *, boundary: str = "dirichlet"
) -> BlockEncoding:
    """Block encoding of the FD Laplacian built from its SCB decomposition."""
    return hamiltonian_block_encoding(poisson_operator(grid, boundary=boundary))


def poisson_simulation_problem(
    grid: CartesianGrid,
    time: float,
    *,
    boundary: str = "dirichlet",
    steps: int = 1,
    order: int = 1,
    options=None,
):
    """The FD Laplacian evolution as a pipeline-ready SimulationProblem.

    Feed the result to :func:`repro.compile.compile` with any strategy —
    ``"direct"`` reproduces the paper's Section V-C circuits,
    ``"block_encoding"`` the object an HHL/QSP solver queries.
    """
    from repro.compile.options import CompileOptions
    from repro.compile.problem import SimulationProblem

    return SimulationProblem(
        poisson_operator(grid, boundary=boundary),
        time,
        steps=steps,
        order=order,
        options=CompileOptions.from_any(options),
        name=f"poisson-{boundary}-{'x'.join(map(str, grid.shape))}",
    )


def poisson_evolution_circuit(
    grid: CartesianGrid,
    time: float,
    *,
    boundary: str = "dirichlet",
    steps: int = 1,
    order: int = 1,
    options: EvolutionOptions | None = None,
) -> QuantumCircuit:
    """Hamiltonian simulation ``e^{-i t Δ}`` of the FD Laplacian (direct strategy).

    Thin shim over the pipeline: equivalent to compiling
    :func:`poisson_simulation_problem` with ``strategy="direct"``.
    """
    from repro.compile.pipeline import compile_problem

    problem = poisson_simulation_problem(
        grid, time, boundary=boundary, steps=steps, order=order, options=options
    )
    return compile_problem(problem, "direct").circuit


def dilated_qlsp_hamiltonian(
    grid: CartesianGrid, *, boundary: str = "dirichlet"
) -> Hamiltonian:
    """Section V-E dilation of the FD matrix for QLSP-style processing.

    The FD Laplacian is already Hermitian, so the dilation is not strictly
    needed; it is exposed to demonstrate that the dilation keeps the number of
    SCB terms unchanged even for a structured application matrix.
    """
    return dilate_hamiltonian(poisson_operator(grid, boundary=boundary))


def decomposition_reconstruction_error(
    grid: CartesianGrid, *, boundary: str = "dirichlet"
) -> float:
    """Max-norm difference between the SCB reconstruction and the sparse FD matrix."""
    ham = poisson_operator(grid, boundary=boundary)
    target = laplacian_matrix(grid, boundary=boundary)
    diff = (ham.matrix(sparse=True) - sp.csr_matrix(target, dtype=complex)).tocoo()
    return float(max(abs(diff.data), default=0.0))


def analytic_poisson_1d(num_nodes: int, mode: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Analytic sine-mode test case for the 1-D Dirichlet Poisson problem.

    Returns ``(source, expected_solution)`` for ``f(x) = sin(π k x / L)`` on a
    unit interval sampled at the interior nodes, using the *discrete*
    eigenvalue of the FD Laplacian so the pair is exact for the discretised
    operator (not only in the continuum limit).
    """
    if num_nodes < 2:
        raise ProblemError("need at least two nodes")
    spacing = 1.0 / (num_nodes + 1)
    positions = np.arange(1, num_nodes + 1) * spacing
    solution = np.sin(np.pi * mode * positions)
    eigenvalue = -(2.0 - 2.0 * np.cos(np.pi * mode * spacing)) / spacing**2
    source = -eigenvalue * solution
    return source, solution
