"""repro — Direct Hamiltonian simulation and gate-efficient block-encoding.

Reproduction of "Gate Efficient Composition of Hamiltonian Simulation and
Block-Encoding with its Application on HUBO, Chemistry and Finite Difference
Method" (Ollive & Louise, IPPS 2025).

The most commonly used classes and functions are re-exported here; the full
API lives in the subpackages:

* :mod:`repro.circuits` — quantum-circuit substrate (gates, simulators,
  decompositions, transpiler);
* :mod:`repro.operators` — Single Component Basis terms, Pauli operators,
  conversions and matrix decompositions;
* :mod:`repro.core` — direct Hamiltonian simulation, Trotter formulas,
  block encodings, LCU machinery, measurement and resource models;
* :mod:`repro.applications` — HUBO, chemistry and finite-difference
  applications;
* :mod:`repro.analysis` — gate-count and Trotter-error reports.
"""

from __future__ import annotations

from repro.circuits import QuantumCircuit, Statevector, circuit_unitary, transpile
from repro.core import (
    EvolutionOptions,
    direct_hamiltonian_simulation,
    evolve_fragment,
    evolve_term,
    fragment_block_encoding,
    hamiltonian_block_encoding,
    pauli_hamiltonian_simulation,
    term_lcu_decomposition,
)
from repro.operators import (
    Hamiltonian,
    HermitianFragment,
    PauliOperator,
    PauliString,
    SCBOperator,
    SCBTerm,
    scb_decompose_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "QuantumCircuit",
    "Statevector",
    "circuit_unitary",
    "transpile",
    "EvolutionOptions",
    "direct_hamiltonian_simulation",
    "evolve_fragment",
    "evolve_term",
    "fragment_block_encoding",
    "hamiltonian_block_encoding",
    "pauli_hamiltonian_simulation",
    "term_lcu_decomposition",
    "Hamiltonian",
    "HermitianFragment",
    "PauliOperator",
    "PauliString",
    "SCBOperator",
    "SCBTerm",
    "scb_decompose_matrix",
]
