"""Regular Cartesian grids for the finite-difference examples (Fig. 7).

The paper studies three discretisations: (a) a 1-D line of equidistant nodes,
(b) two node-lines forming one layer of square cells, and (c) two layers of
two node-lines forming cubes.  :class:`CartesianGrid` generalises them to any
power-of-two number of nodes per line / lines / layers, which is what the
qubit encoding requires (one qubit halves the index range).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProblemError
from repro.utils.validation import check_power_of_two


@dataclass(frozen=True)
class CartesianGrid:
    """A regular grid with power-of-two extents.

    Attributes
    ----------
    shape:
        Number of nodes along each dimension, fastest-varying last (so a 2-D
        grid with two lines of N nodes is ``(2, N)`` — line index first, node
        index second, matching the paper's ``f_{i,j}`` ordering where ``i`` is
        the node index on the line).
    spacing:
        Mesh step ``d`` (the same in every dimension).
    """

    shape: tuple[int, ...]
    spacing: float = 1.0

    def __post_init__(self) -> None:
        if not self.shape:
            raise ProblemError("grid needs at least one dimension")
        for extent in self.shape:
            check_power_of_two(extent, "grid extent")
        if self.spacing <= 0:
            raise ProblemError("grid spacing must be positive")

    # ------------------------------------------------------------------ sizes

    @property
    def num_dimensions(self) -> int:
        return len(self.shape)

    @property
    def num_nodes(self) -> int:
        return int(np.prod(self.shape))

    @property
    def qubits_per_dimension(self) -> tuple[int, ...]:
        return tuple(int(extent).bit_length() - 1 for extent in self.shape)

    @property
    def num_qubits(self) -> int:
        return sum(self.qubits_per_dimension)

    # --------------------------------------------------------------- indexing

    def flat_index(self, coordinates: tuple[int, ...]) -> int:
        """Row-major flattened node index (first dimension most significant)."""
        if len(coordinates) != self.num_dimensions:
            raise ProblemError("coordinate arity does not match the grid dimension")
        index = 0
        for coord, extent in zip(coordinates, self.shape):
            if not 0 <= coord < extent:
                raise ProblemError(f"coordinate {coord} out of range for extent {extent}")
            index = index * extent + coord
        return index

    def coordinates(self, flat_index: int) -> tuple[int, ...]:
        """Inverse of :meth:`flat_index`."""
        if not 0 <= flat_index < self.num_nodes:
            raise ProblemError("flat index out of range")
        coords = []
        remaining = flat_index
        for extent in reversed(self.shape):
            coords.append(remaining % extent)
            remaining //= extent
        return tuple(reversed(coords))

    def node_positions(self) -> np.ndarray:
        """Physical positions of all nodes, shape (num_nodes, num_dimensions)."""
        grids = np.meshgrid(
            *[np.arange(extent) * self.spacing for extent in self.shape], indexing="ij"
        )
        return np.stack([g.reshape(-1) for g in grids], axis=1)

    def neighbors(self, flat_index: int) -> list[int]:
        """Flat indices of the first (von-Neumann) neighbours of a node."""
        coords = self.coordinates(flat_index)
        out = []
        for dim, extent in enumerate(self.shape):
            for delta in (-1, 1):
                moved = list(coords)
                moved[dim] += delta
                if 0 <= moved[dim] < extent:
                    out.append(self.flat_index(tuple(moved)))
        return out


def line_grid(num_nodes: int, spacing: float = 1.0) -> CartesianGrid:
    """The 1-D discretisation (a) of Fig. 7."""
    return CartesianGrid((num_nodes,), spacing)


def two_line_grid(num_nodes: int, spacing: float = 1.0) -> CartesianGrid:
    """The two-node-line 2-D discretisation (b) of Fig. 7."""
    return CartesianGrid((2, num_nodes), spacing)


def double_layer_grid(num_nodes: int, spacing: float = 1.0) -> CartesianGrid:
    """The two-layer / two-line 3-D discretisation (c) of Fig. 7."""
    return CartesianGrid((2, 2, num_nodes), spacing)
