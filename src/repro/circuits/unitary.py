"""Exact unitary extraction of a circuit.

The full ``2^n × 2^n`` unitary is obtained by evolving the identity matrix
column-by-column in a single batched tensor contraction per gate, reusing the
vectorized kernel of :mod:`repro.circuits.statevector`.  This is practical up
to roughly 12–13 qubits which covers every correctness check in the test
suite; larger circuits are verified through their action on statevectors.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import apply_matrix
from repro.exceptions import SimulationError


def circuit_unitary(
    circuit: QuantumCircuit,
    max_qubits: int = 14,
    *,
    dtype: np.dtype | type = np.complex128,
) -> np.ndarray:
    """Dense unitary matrix implemented by ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to evaluate.
    max_qubits:
        Safety limit; computing the dense unitary beyond ~14 qubits would
        allocate multi-gigabyte arrays, so the caller must raise the limit
        explicitly if that is really intended.  The compile pipeline exposes
        this knob as ``CompileOptions.unitary_max_qubits``.
    dtype:
        Complex dtype of the accumulation *and* of the returned array.  The
        whole contraction runs in this dtype — gate matrices are cast down
        (or up) once per gate — so requesting ``np.complex64`` really halves
        the memory instead of being silently upcast to complex128 by the
        first complex128 gate matrix, as earlier versions did.
    """
    dtype = np.dtype(dtype)
    if dtype.kind != "c":
        raise SimulationError(f"circuit_unitary needs a complex dtype, got {dtype}")
    n = circuit.num_qubits
    if n > max_qubits:
        raise SimulationError(
            f"refusing to build a dense unitary on {n} qubits (limit {max_qubits}); "
            "raise max_qubits explicitly if this is intended"
        )
    dim = 1 << n
    # Batch of column vectors: shape (2,)*n + (dim,) where the last axis indexes
    # the input basis state.
    tensor = np.eye(dim, dtype=dtype).reshape((2,) * n + (dim,))
    for instr in circuit:
        tensor = apply_matrix(tensor, instr.gate.matrix(), instr.qubits)
    unitary = tensor.reshape(dim, dim)
    if circuit.global_phase:
        unitary = unitary * dtype.type(np.exp(1j * circuit.global_phase))
    if unitary.dtype != dtype:  # pragma: no cover - defensive; kernel preserves dtype
        unitary = unitary.astype(dtype)
    return unitary


def circuits_equivalent(
    a: QuantumCircuit,
    b: QuantumCircuit,
    atol: float = 1e-8,
    up_to_global_phase: bool = False,
) -> bool:
    """Whether two circuits implement the same unitary (optionally up to phase)."""
    if a.num_qubits != b.num_qubits:
        return False
    ua = circuit_unitary(a)
    ub = circuit_unitary(b)
    if np.allclose(ua, ub, atol=atol):
        return True
    if not up_to_global_phase:
        return False
    overlap = np.trace(ua.conj().T @ ub)
    if abs(overlap) < 1e-12:
        return False
    phase = overlap / abs(overlap)
    return np.allclose(ua * phase, ub, atol=atol)
