"""Unit tests of the CSR gate-embedding kernel behind the sparse backend."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro.circuits.sparse as sparse_mod
from repro.circuits import (
    QuantumCircuit,
    Statevector,
    apply_circuit_sparse,
    circuit_sparse_operators,
    gate_sparse_operator,
    random_circuit,
)
from repro.circuits.gate import StandardGate
from repro.exceptions import SimulationError


class TestGateSparseOperator:
    def test_single_qubit_embedding_matches_kron(self):
        x = StandardGate("x").matrix()
        # qubit 0 is the MSB: X on qubit 0 of two qubits is X ⊗ I.
        full = gate_sparse_operator(x, (0,), 2).toarray()
        np.testing.assert_allclose(full, np.kron(x, np.eye(2)))
        full = gate_sparse_operator(x, (1,), 2).toarray()
        np.testing.assert_allclose(full, np.kron(np.eye(2), x))

    def test_controlled_gates_stay_one_nonzero_per_row(self):
        cx = StandardGate("cx").matrix()
        op = gate_sparse_operator(cx, (0, 2), 8)
        assert op.nnz == 1 << 8
        assert (op.getnnz(axis=1) == 1).all()

    def test_reversed_qubit_order(self):
        cx = StandardGate("cx").matrix()
        forward = gate_sparse_operator(cx, (0, 1), 2).toarray()
        np.testing.assert_allclose(forward, cx)
        backward = gate_sparse_operator(cx, (1, 0), 2).toarray()
        qc = QuantumCircuit(2)
        qc.cx(1, 0)
        from repro.circuits import circuit_unitary

        np.testing.assert_allclose(backward, circuit_unitary(qc))

    def test_shape_mismatch_raises(self):
        with pytest.raises(SimulationError, match="does not match"):
            gate_sparse_operator(np.eye(4), (0,), 3)

    def test_register_width_guard(self):
        with pytest.raises(SimulationError, match="limit"):
            gate_sparse_operator(np.eye(2), (0,), sparse_mod.MAX_SPARSE_QUBITS + 1)

    def test_operator_nnz_guard_names_the_cure(self, monkeypatch):
        # A dense fused block embeds to gate_nnz << (n-k) entries; the guard
        # must trip before the allocation and point at the fusion options.
        monkeypatch.setattr(sparse_mod, "MAX_SPARSE_OPERATOR_NNZ", 8)
        dense = np.linalg.qr(
            np.random.default_rng(0).normal(size=(4, 4))
            + 1j * np.random.default_rng(1).normal(size=(4, 4))
        )[0]
        with pytest.raises(SimulationError, match="fusion_max_qubits"):
            gate_sparse_operator(dense, (0, 1), 4)


class TestApplyCircuitSparse:
    def test_matches_dense_evolution(self):
        qc = random_circuit(5, 40, 17)
        qc.global_phase = 0.37
        psi = np.random.default_rng(3).normal(size=32) + 0j
        psi /= np.linalg.norm(psi)
        np.testing.assert_allclose(
            apply_circuit_sparse(qc, psi),
            Statevector(psi).evolve(qc).data,
            atol=1e-12,
        )

    def test_accepts_precomputed_operators(self):
        qc = random_circuit(3, 10, 5)
        ops = circuit_sparse_operators(qc)
        assert all(sp.issparse(op) for op in ops)
        np.testing.assert_allclose(
            apply_circuit_sparse(qc, np.eye(8)[:, 0], operators=ops),
            apply_circuit_sparse(qc, np.eye(8)[:, 0]),
            atol=1e-12,
        )

    def test_dimension_mismatch_raises(self):
        with pytest.raises(SimulationError, match="does not fit"):
            apply_circuit_sparse(QuantumCircuit(3), np.zeros(4))
