"""Direct-vs-usual strategy comparison for a Hamiltonian of SCB terms.

Gathers in one object the quantities the paper uses throughout its examples:
number of exponentiated fragments, rotation counts, two-qubit gate counts,
depths, and the Trotter error of a single product-formula step for both
strategies.

Since the :mod:`repro.compile` pipeline landed, this module is a thin
presentation layer: :func:`compare_strategies` builds a
:class:`~repro.compile.problem.SimulationProblem`, sweeps it through
``compare_all(problem)`` and repackages the per-strategy reports into the
historical :class:`StrategyComparison` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.gate_counts import GateCountReport
from repro.analysis.trotter_error import trotter_error_norm, trotter_error_state
from repro.circuits.transpile import TranspileOptions
from repro.core.direct_evolution import EvolutionOptions
from repro.operators.hamiltonian import Hamiltonian


@dataclass
class StrategyComparison:
    """Side-by-side metrics of the two strategies for one Hamiltonian."""

    num_qubits: int
    time: float
    direct_fragments: int
    pauli_strings: int
    direct_report: GateCountReport
    pauli_report: GateCountReport
    direct_error: float
    pauli_error: float
    #: Rotation counts of the *logical* (pre-transpilation) circuits — the
    #: "number of arbitrary rotations" metric the paper quotes (one per
    #: gathered term for the direct strategy, one per Pauli string for the
    #: usual strategy).
    direct_logical_rotations: int = 0
    pauli_logical_rotations: int = 0
    extra: dict = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"Hamiltonian on {self.num_qubits} qubits, evolution time {self.time}",
            f"  direct strategy : {self.direct_fragments:5d} fragments, "
            f"{self.direct_logical_rotations:5d} logical rotations, "
            f"{self.direct_report.two_qubit_gates:5d} two-qubit gates (transpiled), "
            f"depth {self.direct_report.depth:5d}, step error {self.direct_error:.3e}",
            f"  usual  strategy : {self.pauli_strings:5d} Pauli strings, "
            f"{self.pauli_logical_rotations:5d} logical rotations, "
            f"{self.pauli_report.two_qubit_gates:5d} two-qubit gates (transpiled), "
            f"depth {self.pauli_report.depth:5d}, step error {self.pauli_error:.3e}",
        ]
        return "\n".join(lines)


def compare_strategies(
    hamiltonian: Hamiltonian,
    time: float,
    *,
    steps: int = 1,
    order: int = 1,
    transpiled: bool = True,
    evolution_options: EvolutionOptions | None = None,
    compute_error: bool = True,
    measurement_shots: int | None = None,
    measurement_state=None,
    measurement_rng=None,
    session=None,
) -> StrategyComparison:
    """Build both single-step circuits and compare their resources and errors.

    With ``measurement_shots`` set, the comparison additionally quantifies the
    paper's Annex-C measurement advantage at that fixed shot budget: a
    :class:`~repro.noise.estimator.MeasurementComparison` (one SCB setting per
    fragment vs one setting per Pauli string, Neyman-allocated) is stored
    under ``extra["measurement"]``.  ``measurement_state`` defaults to the
    uniform superposition ``|+…+⟩`` — an eigenstate (e.g. the ground state)
    would make every SCB setting deterministic and the comparison degenerate;
    pass ``measurement_rng`` to seed the shots.

    With a :class:`~repro.runtime.session.Session`, compilation goes through
    the session's program memo and the (expensive, deterministic) per-strategy
    Trotter errors are content-addressed in its result cache — a repeated
    comparison of an unchanged Hamiltonian recomputes nothing.
    """
    # Imported here: repro.analysis is a dependency of the pipeline's report
    # layer, so a module-level import would be circular.
    from repro.compile.options import CompileOptions
    from repro.compile.pipeline import compare_all
    from repro.compile.problem import SimulationProblem

    problem = SimulationProblem(
        hamiltonian,
        time,
        steps=steps,
        order=order,
        options=CompileOptions.from_any(evolution_options),
    )
    sweep = compare_all(problem, session=session)
    direct, pauli = sweep["direct"], sweep["pauli"]

    options = TranspileOptions(mcx_mode="noancilla")
    direct_report = direct.resources(transpiled=transpiled, transpile_options=options)
    pauli_report = pauli.resources(transpiled=transpiled, transpile_options=options)

    direct_error = pauli_error = float("nan")
    if compute_error:
        from repro.analysis.trotter_error import cached_program_error

        if hamiltonian.num_qubits <= 9:
            direct_error = cached_program_error(
                hamiltonian, direct, time, use_norm=True, session=session
            )
            pauli_error = cached_program_error(
                hamiltonian, pauli, time, use_norm=True, session=session
            )
        else:
            # Whole programs, not circuits: past the dense-unitary regime the
            # state error runs on the matrix-free kernel plan when available.
            direct_error = cached_program_error(
                hamiltonian, direct, time, use_norm=False, rng=0, session=session
            )
            pauli_error = cached_program_error(
                hamiltonian, pauli, time, use_norm=False, rng=0, session=session
            )

    extra: dict = {}
    if measurement_shots is not None:
        from repro.circuits.statevector import Statevector
        from repro.noise.estimator import compare_measurement_schemes

        if measurement_state is None:
            dim = 1 << hamiltonian.num_qubits
            measurement_state = Statevector(np.full(dim, 1.0 / np.sqrt(dim)))
        elif not isinstance(measurement_state, Statevector):
            measurement_state = Statevector(measurement_state)
        extra["measurement"] = compare_measurement_schemes(
            hamiltonian, measurement_state, measurement_shots, rng=measurement_rng
        )

    return StrategyComparison(
        num_qubits=hamiltonian.num_qubits,
        time=time,
        direct_fragments=hamiltonian.num_terms,
        pauli_strings=sweep.problem.pauli_operator().num_terms,
        direct_report=direct_report,
        pauli_report=pauli_report,
        direct_error=direct_error,
        pauli_error=pauli_error,
        direct_logical_rotations=direct.circuit.num_rotation_gates(),
        pauli_logical_rotations=pauli.circuit.num_rotation_gates(),
        extra=extra,
    )
