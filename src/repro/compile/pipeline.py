"""Facade functions: problem in, compiled program(s) out.

This is the seam every future scaling PR (result caching, multiprocessing
fan-out, new backends) plugs into: a single :func:`compile_problem` call
replaces the seed's dozen hand-wired builder invocations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.compile.backends import get_backend
from repro.compile.options import CompileOptions
from repro.compile.problem import SimulationProblem
from repro.compile.program import CompiledProgram
from repro.compile.strategies import get_strategy
from repro.exceptions import CompileError
from repro.operators.hamiltonian import Hamiltonian


def _coerce_problem(problem, time=None, **problem_kwargs) -> SimulationProblem:
    if isinstance(problem, SimulationProblem):
        return problem
    if isinstance(problem, Hamiltonian):
        if time is None:
            raise CompileError("a bare Hamiltonian needs an explicit time=")
        return SimulationProblem(problem, time, **problem_kwargs)
    raise CompileError(
        f"cannot compile a {type(problem).__name__}; "
        "pass a SimulationProblem (or a Hamiltonian with time=)"
    )


def compile_problem(
    problem: SimulationProblem | Hamiltonian,
    strategy: str = "direct",
    *,
    time: float | None = None,
    steps: int | None = None,
    order: int | None = None,
    **opts,
) -> CompiledProgram:
    """Compile a problem with the given strategy into a :class:`CompiledProgram`.

    ``**opts`` are validated option overrides (see
    :class:`~repro.compile.options.CompileOptions`); unknown names raise
    :class:`~repro.exceptions.OptionsError`.  ``time``/``steps``/``order``
    override the problem's prescription without mutating it.
    """
    from dataclasses import replace

    problem = _coerce_problem(problem, time=time)
    updates: dict = {}
    if time is not None and problem.time != time:
        updates["time"] = time
    if steps is not None:
        updates["steps"] = steps
    if order is not None:
        updates["order"] = order
    if opts:
        updates["options"] = CompileOptions.from_any(problem.options, **opts)
    if updates:
        problem = replace(problem, **updates)
    return CompiledProgram(problem=problem, strategy=get_strategy(strategy))


@dataclass
class StrategySweep:
    """Every requested strategy compiled against the same problem."""

    problem: SimulationProblem
    programs: dict[str, CompiledProgram]

    def __getitem__(self, name: str) -> CompiledProgram:
        return self.programs[name]

    def reports(self, *, transpiled: bool = True) -> dict:
        return {
            name: program.resources(transpiled=transpiled)
            for name, program in self.programs.items()
        }

    def estimates(self) -> dict:
        return {name: p.estimate() for name, p in self.programs.items()}

    def gate_count_gap(self, left: str = "direct", right: str = "pauli") -> int:
        """Transpiled two-qubit-gate gap between two strategies (left − right)."""
        reports = self.reports()
        return reports[left].two_qubit_gates - reports[right].two_qubit_gates

    def summary(self) -> str:
        from repro.analysis.gate_counts import format_comparison_table

        return format_comparison_table(self.reports())


def compare_all(
    problem: SimulationProblem | Hamiltonian,
    *,
    strategies: Sequence[str] = ("direct", "pauli"),
    time: float | None = None,
    **opts,
) -> StrategySweep:
    """Compile the same problem under several strategies for side-by-side study.

    The default pair reproduces the paper's Fig. 2 / Table 3 comparison; pass
    ``strategies=repro.compile.available_strategies()`` for the full sweep.
    """
    problem = _coerce_problem(problem, time=time)
    programs = {
        name: compile_problem(problem, name, **opts) for name in strategies
    }
    return StrategySweep(problem=problem, programs=programs)


def compile_many(
    problems: Iterable[SimulationProblem | Hamiltonian],
    strategy: str = "direct",
    *,
    time: float | None = None,
    **opts,
) -> list[CompiledProgram]:
    """Batch compile — the hook a future fan-out/caching layer will override."""
    return [
        compile_problem(problem, strategy, time=time, **opts) for problem in problems
    ]


def run_many(
    programs: Iterable[CompiledProgram],
    backend: str = "statevector",
    *,
    initial_states: Sequence | None = None,
    **kwargs,
) -> list:
    """Run every program on the same backend, preserving order.

    The backend is resolved once and every build product is cached *on the
    program* — circuit, fused execution circuit, sparse operators — so a
    parameter sweep amortizes compilation and fusion: a program appearing
    several times in ``programs`` (e.g. swept over ``initial_states``) is
    built and fused exactly once, and repeated ``run_many`` calls over the
    same programs skip straight to execution.

    ``initial_states`` zips one initial state per program (for the state
    backends); sweep a single program over many states with
    ``run_many([program] * len(states), initial_states=states)``.
    """
    resolved = get_backend(backend)
    programs = list(programs)
    if initial_states is None:
        return [resolved.run(program, **kwargs) for program in programs]
    states = list(initial_states)
    if len(states) != len(programs):
        raise CompileError(
            f"{len(states)} initial states for {len(programs)} programs"
        )
    return [
        resolved.run(program, initial_state=state, **kwargs)
        for program, state in zip(programs, states)
    ]
