"""Canonical JSON serialization and content hashing.

The :mod:`repro.runtime` layer addresses results by *content*: two runs with
the same problem, options and run arguments must map to the same cache key on
any machine, in any process, regardless of dict insertion order.  This module
provides the two primitives that make that possible:

* :func:`canonical_json` — a deterministic JSON encoding (sorted keys, no
  whitespace, shortest-round-trip floats, NaN/Inf rejected);
* :func:`content_hash` — the SHA-256 of a canonical encoding, prefixed with a
  format-version tag so a change to the serialization scheme invalidates old
  cache entries instead of silently colliding with them.

Plus small helpers for the payloads the core datatypes need: complex scalars
and complex matrices as nested ``[re, im]`` lists.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.exceptions import ReproError

#: Bump when the canonical encoding of any core datatype changes shape —
#: every content key (and with it every cache entry) is versioned by this tag.
SPEC_VERSION = 1


class SerializationError(ReproError):
    """Raised when an object cannot be canonically serialized."""


def _coerce_jsonable(value: Any) -> Any:
    """Normalize numpy scalars and tuples into plain JSON-able Python values."""
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            raise SerializationError("NaN/Inf cannot appear in a canonical payload")
        return value
    if isinstance(value, (complex, np.complexfloating)):
        return complex_to_json(complex(value))
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"canonical payload keys must be strings, got {key!r}"
                )
            out[key] = _coerce_jsonable(item)
        return out
    if isinstance(value, (list, tuple)):
        return [_coerce_jsonable(item) for item in value]
    raise SerializationError(
        f"cannot canonically serialize a {type(value).__name__}: {value!r}"
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding of a JSON-able payload.

    Keys are sorted, separators are minimal and floats use Python's
    shortest-round-trip ``repr`` — the same payload always yields the same
    byte string.  Tuples are accepted and encoded as lists; numpy scalars are
    coerced; NaN and infinities are rejected (they do not round-trip).
    """
    return json.dumps(
        _coerce_jsonable(payload),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_hash(payload: Any, *, tag: str = "repro") -> str:
    """SHA-256 hex digest of the canonical encoding, version-tagged."""
    body = f"{tag}-v{SPEC_VERSION}:{canonical_json(payload)}"
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Complex payload helpers
# ---------------------------------------------------------------------------


def complex_to_json(value: complex) -> list[float]:
    """``a + bj`` as the two-element list ``[a, b]``."""
    value = complex(value)
    return [float(value.real), float(value.imag)]


def complex_from_json(value: "list[float] | float | int") -> complex:
    """Inverse of :func:`complex_to_json` (bare reals accepted)."""
    if isinstance(value, (int, float)):
        return complex(value)
    real, imag = value
    return complex(float(real), float(imag))


def matrix_to_json(matrix: np.ndarray) -> list[list[list[float]]]:
    """A complex matrix as nested rows of ``[re, im]`` pairs."""
    matrix = np.asarray(matrix, dtype=complex)
    return [[complex_to_json(entry) for entry in row] for row in matrix]


def matrix_from_json(rows: list) -> np.ndarray:
    """Inverse of :func:`matrix_to_json`."""
    return np.array(
        [[complex_from_json(entry) for entry in row] for row in rows], dtype=complex
    )
