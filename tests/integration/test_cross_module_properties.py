"""Cross-module property-based tests (hypothesis).

These exercise whole pipelines on randomly generated inputs: random SCB
Hamiltonians must evolve, block-encode, convert and measure consistently,
random sparse matrices must round-trip through the Section V-D decomposition,
and random HUBO problems must give identical physics through either strategy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.applications.hubo import HUBOProblem, phase_separator
from repro.circuits import Statevector, circuit_unitary
from repro.core import (
    direct_trotter_step,
    estimate_expectation,
    evolve_fragment,
    hamiltonian_block_encoding,
    term_lcu_decomposition,
)
from repro.operators import Hamiltonian, SCBTerm, scb_decompose_matrix, scb_reconstruction_error
from repro.operators.hamiltonian import HermitianFragment
from repro.utils.linalg import phase_aligned_distance, random_statevector, spectral_norm_diff

scb_label = st.text(alphabet="IXYZnmsd", min_size=2, max_size=4)


def _random_hamiltonian(labels: list[str], seed: int) -> Hamiltonian:
    rng = np.random.default_rng(seed)
    width = max(len(label) for label in labels)
    ham = Hamiltonian(width)
    for label in labels:
        padded = label + "I" * (width - len(label))
        coeff = float(rng.uniform(-1.0, 1.0))
        if abs(coeff) < 1e-3:
            coeff = 0.5
        ham.add_term(SCBTerm.from_label(padded, coeff))
    return ham


class TestEvolutionPipelines:
    @given(st.lists(scb_label, min_size=1, max_size=3), st.integers(min_value=0, max_value=10**6))
    def test_trotter_step_error_bounded_by_commutators(self, labels, seed):
        ham = _random_hamiltonian(labels, seed)
        time = 0.1
        circuit = direct_trotter_step(ham, time)
        exact = expm(-1j * time * ham.matrix())
        error = spectral_norm_diff(circuit_unitary(circuit), exact)
        # Loose universal bound: first-order Trotter error ≤ (t^2/2)·Σ_{i<j}‖[H_i,H_j]‖
        fragments = ham.hermitian_fragments()
        bound = 0.0
        for i, a in enumerate(fragments):
            for b in fragments[i + 1:]:
                ma, mb = a.matrix(), b.matrix()
                bound += np.linalg.norm(ma @ mb - mb @ ma, 2)
        assert error <= time**2 / 2.0 * bound + 1e-8

    @given(scb_label, st.integers(min_value=0, max_value=10**6))
    def test_block_encoding_matches_evolution_generator(self, label, seed):
        rng = np.random.default_rng(seed)
        coeff = float(rng.uniform(0.2, 1.0))
        term = SCBTerm.from_label(label, coeff)
        fragment = HermitianFragment(term, include_hc=not term.is_hermitian)
        # The LCU reconstruction and the evolution circuit must describe the
        # same generator: exp(-i t Σ α_i U_i) == circuit.
        decomposition = term_lcu_decomposition(fragment)
        generator = decomposition.matrix()
        circuit = evolve_fragment(fragment, 0.3)
        assert spectral_norm_diff(circuit_unitary(circuit), expm(-1j * 0.3 * generator)) < 1e-8

    @given(st.lists(scb_label, min_size=1, max_size=2), st.integers(min_value=0, max_value=10**6))
    def test_hamiltonian_block_encoding_consistency(self, labels, seed):
        ham = _random_hamiltonian(labels, seed)
        encoding = hamiltonian_block_encoding(ham)
        assert encoding.verification_error(ham.matrix()) < 1e-7

    @given(st.lists(scb_label, min_size=1, max_size=3), st.integers(min_value=0, max_value=10**6))
    def test_measurement_scheme_matches_matrix_expectation(self, labels, seed):
        ham = _random_hamiltonian(labels, seed)
        rng = np.random.default_rng(seed + 1)
        state = Statevector(random_statevector(ham.num_qubits, rng))
        estimate = estimate_expectation(ham, state)
        exact = ham.expectation_value(state.data)
        assert estimate == pytest.approx(exact, abs=1e-7)


class TestMatrixRoundTrips:
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10**6),
           st.floats(min_value=0.1, max_value=0.9))
    def test_sparse_matrix_decomposition_roundtrip(self, num_qubits, seed, density):
        rng = np.random.default_rng(seed)
        dim = 1 << num_qubits
        matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        matrix = np.where(rng.random(size=(dim, dim)) < density, matrix, 0.0)
        matrix = matrix + matrix.conj().T
        ham = scb_decompose_matrix(matrix)
        assert scb_reconstruction_error(matrix, ham) < 1e-9

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10**6))
    def test_decomposition_evolution_matches_expm(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        dim = 1 << num_qubits
        matrix = rng.normal(size=(dim, dim))
        matrix = np.where(rng.random(size=(dim, dim)) < 0.3, matrix, 0.0)
        matrix = matrix + matrix.T
        ham = scb_decompose_matrix(matrix)
        psi = random_statevector(num_qubits, rng)
        evolved = ham.evolve_exact(psi, 0.17)
        expected = expm(-1j * 0.17 * matrix) @ psi
        assert np.max(np.abs(evolved - expected)) < 1e-8


class TestHUBOStrategies:
    @settings(max_examples=15)
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=10**6))
    def test_phase_separators_agree_for_random_problems(self, num_variables, seed):
        rng = np.random.default_rng(seed)
        problem = HUBOProblem(num_variables, formalism="boolean")
        num_terms = int(rng.integers(1, 5))
        for _ in range(num_terms):
            order = int(rng.integers(1, num_variables + 1))
            variables = tuple(rng.choice(num_variables, size=order, replace=False))
            problem.add_term(variables, float(rng.uniform(-2.0, 2.0)))
        if problem.num_terms == 0:
            problem.add_term((0,), 1.0)
        gamma = float(rng.uniform(0.1, 1.0))
        direct = circuit_unitary(phase_separator(problem, gamma, strategy="direct"))
        usual = circuit_unitary(phase_separator(problem, gamma, strategy="usual"))
        exact = expm(-1j * gamma * problem.to_hamiltonian().matrix())
        assert phase_aligned_distance(direct, exact) < 1e-8
        assert phase_aligned_distance(usual, exact) < 1e-8
