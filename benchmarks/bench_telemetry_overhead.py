"""The telemetry tax: disabled tracing must cost under 2% of a sweep point.

Three measurements:

1. **The disabled path** (the headline claim): with ``REPRO_TRACE`` off,
   every instrumented region pays one :func:`repro.telemetry.span` call that
   returns the shared null singleton.  The benchmark times that call in a
   tight loop, multiplies by the spans a grid point traverses (point +
   compile + evolve + encode + cache get/put + transport export), and
   asserts the product is ≤ 2% of a measured point's wall time.  The margin
   is enormous in practice — a null span is tens of nanoseconds against
   millisecond points — so a regression here means someone put real work on
   the disabled path.

2. **The disabled profiler** (asserted with the same budget): with
   ``REPRO_PROFILE`` unset, :func:`repro.telemetry.maybe_start_profiler` —
   called once per pool-worker initializer and worker entry point — must be
   a single raw environment lookup.  Timed per call and folded into the
   per-point overhead assertion (one call per point is already a gross
   overestimate of its real once-per-process cost).

3. **The enabled path** (recorded, not asserted): the same sweep run cold
   with tracing on vs. off, reporting the wall-clock ratio so the cost of
   turning tracing on stays visible in ``BENCH_telemetry.json``.

Run ``python benchmarks/bench_telemetry_overhead.py --quick`` for the
assertion-only CI mode (smaller loops, no JSON rewrite).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import repro
from repro import telemetry
from repro.runtime import RunSpec, Session, SweepSpec, execute_spec

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_telemetry.json"

#: Spans one grid point traverses end to end: execute.point, execute.compile,
#: execute.evolve, execute.encode, cache.get, cache.put, transport.export.
SPANS_PER_POINT = 7

#: The claim: disabled tracing adds at most this fraction of a point's time.
OVERHEAD_CLAIM = 0.02


def _problem() -> "repro.SimulationProblem":
    return repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3, "XIXI": 0.2}, time=0.3,
        name="telemetry-overhead",
    )


def measure_null_span_seconds(iterations: int) -> float:
    """Per-call cost of the disabled ``span()`` path (must be tiny)."""
    assert not telemetry.tracing_enabled(), "disabled-path bench needs tracing off"
    with telemetry.span("warmup"):
        pass
    start = time.perf_counter()
    for _ in range(iterations):
        with telemetry.span("execute.point", backend="statevector"):
            pass
    return (time.perf_counter() - start) / iterations


def measure_null_profiler_seconds(iterations: int) -> float:
    """Per-call cost of ``maybe_start_profiler()`` with ``REPRO_PROFILE`` unset."""
    import os

    assert os.environ.get("REPRO_PROFILE") is None, (
        "disabled-path bench needs REPRO_PROFILE unset"
    )
    telemetry.maybe_start_profiler()  # warmup
    start = time.perf_counter()
    for _ in range(iterations):
        telemetry.maybe_start_profiler()
    return (time.perf_counter() - start) / iterations


def measure_point_seconds(repeats: int) -> float:
    """Wall time of one representative grid point (fresh each repeat)."""
    payload = RunSpec(problem=_problem()).to_dict(canonical=True)
    execute_spec(payload)  # warm the program memo: steady-state cost
    start = time.perf_counter()
    for _ in range(repeats):
        outcome = execute_spec(payload)
        assert outcome["ok"]
    return (time.perf_counter() - start) / repeats


def measure_sweep_seconds(*, traced: bool, steps: "tuple[int, ...]") -> float:
    spec = SweepSpec(problem=_problem(), strategies=("direct", "pauli"),
                     steps=steps)
    workdir = Path(tempfile.mkdtemp(prefix="bench-telemetry-"))
    if traced:
        telemetry.configure(enabled=True, directory=workdir / "traces")
    try:
        start = time.perf_counter()
        results = Session(cache=False).sweep(spec)
        elapsed = time.perf_counter() - start
        assert results.ok
    finally:
        telemetry.reset()
    return elapsed


def run_bench(*, quick: bool = False) -> dict:
    iterations = 20_000 if quick else 200_000
    repeats = 5 if quick else 20
    steps = (1, 2) if quick else (1, 2, 4, 8)

    null_span_s = measure_null_span_seconds(iterations)
    null_profiler_s = measure_null_profiler_seconds(iterations)
    point_s = measure_point_seconds(repeats)
    # The profiler check runs once per worker process, but charging one call
    # per point keeps the claim conservative and the arithmetic simple.
    overhead_fraction = (
        SPANS_PER_POINT * null_span_s + null_profiler_s
    ) / point_s
    assert overhead_fraction <= OVERHEAD_CLAIM, (
        f"disabled telemetry costs {overhead_fraction:.2%} of a "
        f"{point_s * 1e3:.2f} ms point ({SPANS_PER_POINT} spans at "
        f"{null_span_s * 1e9:.0f} ns each plus a "
        f"{null_profiler_s * 1e9:.0f} ns profiler check); "
        f"the claim is <= {OVERHEAD_CLAIM:.0%}"
    )

    untraced_s = measure_sweep_seconds(traced=False, steps=steps)
    traced_s = measure_sweep_seconds(traced=True, steps=steps)

    import os

    payload = {
        "null_span_ns": round(null_span_s * 1e9, 1),
        "null_profiler_ns": round(null_profiler_s * 1e9, 1),
        "point_ms": round(point_s * 1e3, 3),
        "spans_per_point": SPANS_PER_POINT,
        "disabled_overhead_fraction": round(overhead_fraction, 6),
        "disabled_overhead_claim": OVERHEAD_CLAIM,
        "sweep_untraced_s": round(untraced_s, 4),
        "sweep_traced_s": round(traced_s, 4),
        "traced_over_untraced": round(traced_s / untraced_s, 3),
        "machine_cores": os.cpu_count(),
        "quick_mode": quick,
    }

    from benchmarks.conftest import print_table

    print_table(
        "repro.telemetry — tracing overhead",
        ["measurement", "value"],
        [
            ["null span (tracing off)", f"{null_span_s * 1e9:.0f} ns"],
            ["null profiler check", f"{null_profiler_s * 1e9:.0f} ns"],
            ["grid point", f"{point_s * 1e3:.2f} ms"],
            ["disabled overhead / point",
             f"{overhead_fraction:.4%} (claim <= {OVERHEAD_CLAIM:.0%})"],
            ["sweep, tracing off", f"{untraced_s:.3f} s"],
            ["sweep, tracing on",
             f"{traced_s:.3f} s ({traced_s / untraced_s:.2f}x)"],
        ],
    )
    return payload


def test_telemetry_overhead(benchmark):
    payload = run_bench(quick=False)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULT_PATH.name}")
    benchmark(measure_null_span_seconds, 10_000)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller loops, assert the claim, do not rewrite the JSON",
    )
    args = parser.parse_args(argv)
    payload = run_bench(quick=args.quick)
    if not args.quick:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {RESULT_PATH.name}")
    else:
        print(
            f"quick mode: disabled tracing costs "
            f"{payload['disabled_overhead_fraction']:.4%} of a point "
            f"(claim <= {payload['disabled_overhead_claim']:.0%}); "
            f"enabled tracing ran the sweep at "
            f"{payload['traced_over_untraced']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
