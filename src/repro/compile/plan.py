"""Lowering a Trotter schedule to precomputed mask plans.

A :class:`EvolutionPlan` is the term-level compilation target of the
``kernel`` backend: the product formula of a
:class:`~repro.compile.problem.SimulationProblem` flattened into groups of
``(x_mask, z_mask, phase, theta)`` tuples — one group per exponentiated
fragment — that are executed matrix-free, with no circuit construction and no
gate matrix ever materialized.  Both evolution strategies lower:

* ``"pauli"`` — one single-rotation group per Pauli string, mirroring
  :func:`repro.core.trotter.pauli_fragments`;
* ``"direct"`` — each gathered SCB fragment becomes ONE group via its Pauli
  decomposition.

The executor exploits the structural fact at the heart of the paper's direct
strategy: every string in a gathered fragment's decomposition carries the
*same* X mask (number factors expand over ``{I, Z}``, transition factors over
``{X, Y}``), so the fragment acts as ``(H·ψ)[k] = e(k)·ψ[k ^ x]`` with
``e(k) = Σ_j θ_j·phase_j·(-1)^{parity(k & z_j)}`` a function of the few
Z-active qubits only.  Then ``H² = diag(|e|²)`` and the exact exponential has
the closed form::

    exp(-i·H)·ψ = cos(|e|)·ψ  −  i·e·sin(|e|)/|e| · ψ_flipped

— one strided-flip read, two table multiplies and an add per fragment,
*independent of how many Pauli strings the fragment expands into* (the
15-qubit order-11 term of Fig. 2 costs the same three passes as a two-qubit
hop).  ``cos``/``sin`` tables live on the 2^w patterns of the fragment's
Z-support (w small) and broadcast over the full register; diagonal fragments
(``x == 0``) collapse to a single element-wise phase, and consecutive
diagonal groups are merged into one table at bake time.

Plans are built once and cached on the
:class:`~repro.compile.program.CompiledProgram`, so Trotter steps,
``run_many`` initial-state sweeps and error-curve points all reuse the same
baked tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro.circuits.pauli_kernels import pauli_masks
from repro.exceptions import CompileError

if TYPE_CHECKING:  # pragma: no cover
    from repro.compile.problem import SimulationProblem

#: Strategies whose programs are lowerable term schedules.
LOWERABLE_STRATEGIES = ("direct", "pauli")

#: Largest merged-diagonal table (2^18 complex entries = 4 MiB); beyond this
#: adjacent diagonal groups stay separate ops instead of growing one table.
_MAX_MERGED_DIAGONAL_BITS = 18

#: Largest dense support table of one group (2^14 complex entries = 256 KiB).
#: Wider Z-supports are factored as ``e(k) = (-1)^{parity(k & z_common)}·f(k)``
#: with ``z_common`` the AND of the group's Z masks — for a Jordan–Wigner
#: string that peels off the whole parity chain, leaving ``f`` on the few
#: transition/number qubits; the common sign is applied at run time from the
#: shared basis-index cache.
_MAX_TABLE_BITS = 14


class PlanLoweringError(CompileError):
    """Raised when a problem/strategy pair has no mask-plan representation."""


class MaskRotation(NamedTuple):
    """One ``exp(-i·theta·P)`` with ``P`` in symplectic mask form."""

    x_mask: int
    z_mask: int
    phase: complex  # the (-i)^{|Y|} prefactor of pauli_masks
    theta: float


class _DiagonalOp(NamedTuple):
    """``ψ *= table`` — element-wise phases broadcast from the Z-support."""

    table: np.ndarray  # complex, broadcast-shaped (2 on support axes, 1 elsewhere)


class _PairOp(NamedTuple):
    """``ψ' = A·ψ + s·B·ψ_flip`` — the closed-form fragment exponential.

    ``s`` is the optional run-time parity sign ``(-1)^{parity(k & sign_mask)}``
    carrying the factored-out common Z component (e.g. a Jordan–Wigner chain);
    ``sign_mask == 0`` means no run-time sign.  A diagonal group too wide for
    a dense table is expressed as a pair op with an identity flip.
    """

    flip: tuple  # slice tuple realising ψ[k ^ x] as a strided view
    table_a: np.ndarray  # cos(|f|), broadcast-shaped
    table_b: np.ndarray  # -i·f·sin(|f|)/|f|, broadcast-shaped
    sign_mask: int = 0
    #: parity(k & sign_mask) as a (2,)*n boolean tensor, materialized at bake
    #: time (ops are cached on the plan, so every step and sweep reuses it);
    #: None when sign_mask == 0.
    sign_parity: "np.ndarray | None" = None


def _parity_tensor(num_qubits: int, mask: int) -> np.ndarray:
    """``parity(k & mask)`` as a read-only boolean tensor of shape ``(2,)*n``."""
    from repro.circuits.pauli_kernels import basis_indices

    indices = basis_indices(num_qubits)
    tensor = _parity_of(indices & indices.dtype.type(mask)).reshape(
        (2,) * num_qubits
    )
    tensor.setflags(write=False)
    return tensor


def _factor_z_masks(z_masks) -> tuple[int, int]:
    """Factor a group's Z masks into ``(sign_mask, residual_union)``.

    The single source of the table-width policy: when the plain Z-support
    union fits :data:`_MAX_TABLE_BITS` the group bakes a dense table
    (``sign_mask == 0``); otherwise the AND of all masks — contained in every
    string, so its parity splits off exactly — becomes a run-time sign and the
    table lives on the residual union.  Used identically by the lowering-time
    acceptance check and by the baking itself.
    """
    union = 0
    for z_mask in z_masks:
        union |= z_mask
    if bin(union).count("1") <= _MAX_TABLE_BITS:
        return 0, union
    common = z_masks[0]
    for z_mask in z_masks:
        common &= z_mask
    residual = 0
    for z_mask in z_masks:
        residual |= z_mask & ~common
    return common, residual


@dataclass
class EvolutionPlan:
    """A fully-lowered product formula: mask groups for one Trotter step.

    ``step_groups`` holds one tuple of :class:`MaskRotation` per exponentiated
    fragment of one (order-expanded) step; :meth:`evolve` replays the baked
    executor ops ``steps`` times and applies the accumulated identity-string
    phase once at the end.  Reusable across initial states, including batched
    ones.
    """

    num_qubits: int
    steps: int
    step_groups: tuple[tuple[MaskRotation, ...], ...]
    #: Phase angle collected from identity strings over ONE step (the lowered
    #: analogue of ``QuantumCircuit.global_phase``).
    step_phase: float = 0.0
    strategy: str = "direct"
    _ops: "list | None" = field(default=None, repr=False, compare=False)

    @property
    def step_rotations(self) -> tuple[MaskRotation, ...]:
        """The flat mask-tuple sequence of one step (groups concatenated)."""
        return tuple(rotation for group in self.step_groups for rotation in group)

    @property
    def num_rotations(self) -> int:
        """Total mask rotations replayed by one :meth:`evolve` call."""
        return len(self.step_rotations) * self.steps

    # ----------------------------------------------------------------- baking

    def _angle_table(self, group: tuple[MaskRotation, ...]):
        """Factor the group's angle function ``e(k)`` into sign × small table.

        Returns ``(sign_mask, axes, f)`` with
        ``e(k) = (-1)^{parity(k & sign_mask)} · f(k restricted to axes)``.
        ``sign_mask`` is nonzero only when the full Z-support would overflow
        :data:`_MAX_TABLE_BITS` — the :func:`_factor_z_masks` policy.
        """
        n = self.num_qubits
        sign_mask, union = _factor_z_masks([rotation.z_mask for rotation in group])
        axes = tuple(q for q in range(n) if (union >> (n - 1 - q)) & 1)
        width = len(axes)
        patterns = np.arange(1 << width)
        f = np.zeros(1 << width, dtype=complex)
        for rotation in group:
            residual = rotation.z_mask & ~sign_mask
            compressed = 0
            for position, qubit in enumerate(axes):
                if (residual >> (n - 1 - qubit)) & 1:
                    compressed |= 1 << (width - 1 - position)
            signs = np.where(_parity_of(patterns & compressed), -1.0, 1.0)
            f = f + (rotation.theta * rotation.phase) * signs
        return sign_mask, axes, f

    def _broadcast(self, axes: tuple[int, ...], table: np.ndarray) -> np.ndarray:
        """Reshape a 2^w support table so it broadcasts over the register."""
        shape = tuple(2 if q in axes else 1 for q in range(self.num_qubits))
        return np.ascontiguousarray(table).reshape(shape)

    def _bake_group(self, group: tuple[MaskRotation, ...], parities: dict):
        n = self.num_qubits
        x_mask = group[0].x_mask
        sign_mask, axes, f = self._angle_table(group)
        if sign_mask and sign_mask not in parities:
            parities[sign_mask] = _parity_tensor(n, sign_mask)
        sign_parity = parities.get(sign_mask) if sign_mask else None
        identity_flip = (slice(None),) * n
        if x_mask == 0 and sign_mask == 0:
            # Diagonal fragment: exp(-i·f(k)) element-wise.  f is real here
            # (no Y factors without X), so this is a pure phase table.
            return _DiagonalOp(self._broadcast(axes, np.exp(-1j * f.real)))
        if x_mask == 0:
            # Wide diagonal with a factored sign: exp(-i·s·f) = cos f − i·s·sin f,
            # which is a pair op whose "flip" is the identity.
            return _PairOp(
                identity_flip,
                self._broadcast(axes, np.cos(f.real)),
                self._broadcast(axes, -1j * np.sin(f.real)),
                sign_mask,
                sign_parity,
            )
        magnitude = np.abs(f)
        table_a = np.cos(magnitude)
        with np.errstate(invalid="ignore", divide="ignore"):
            sinc = np.where(magnitude > 0.0, np.sin(magnitude) / magnitude, 0.0)
        table_b = -1j * f * sinc
        flip = tuple(
            slice(None, None, -1) if (x_mask >> (n - 1 - q)) & 1 else slice(None)
            for q in range(n)
        )
        return _PairOp(
            flip,
            self._broadcast(axes, table_a),
            self._broadcast(axes, table_b),
            sign_mask,
            sign_parity,
        )

    def _baked_ops(self) -> list:
        """Executor ops of one step (built once, cached on the plan).

        Diagonal groups are folded away wherever possible: a pending diagonal
        phase table ``T`` followed by a pair op becomes ``A' = T·A`` and
        ``B'(k) = B(k)·T(k ^ x)`` (the flip of a broadcast table is just its
        slice-reversal, size-1 axes included), so runs of diagonal fragments
        cost nothing at execution time.  Oversized unions (> 2^18 table
        entries) flush instead of growing.
        """
        if self._ops is None:
            ops: list = []
            pending: np.ndarray | None = None  # accumulated diagonal table
            parities: dict = {}  # sign_mask -> parity tensor, deduped per plan
            for group in self.step_groups:
                op = self._bake_group(group, parities)
                if isinstance(op, _DiagonalOp):
                    if pending is None:
                        pending = op.table
                    elif pending.size * op.table.size <= (1 << _MAX_MERGED_DIAGONAL_BITS):
                        pending = pending * op.table
                    else:
                        ops.append(_DiagonalOp(pending))
                        pending = op.table
                    continue
                if (
                    pending is not None
                    and pending.size * max(op.table_a.size, op.table_b.size)
                    <= (1 << _MAX_MERGED_DIAGONAL_BITS)
                ):
                    op = _PairOp(
                        op.flip,
                        np.ascontiguousarray(op.table_a * pending),
                        np.ascontiguousarray(op.table_b * pending[op.flip]),
                        op.sign_mask,
                        op.sign_parity,
                    )
                    pending = None
                elif pending is not None:
                    ops.append(_DiagonalOp(pending))
                    pending = None
                ops.append(op)
            if pending is not None:
                ops.append(_DiagonalOp(pending))
            self._ops = ops
        return self._ops

    # -------------------------------------------------------------- execution

    def evolve(self, state: np.ndarray) -> np.ndarray:
        """Apply the full schedule to ``state`` (``(2^n,)`` or ``(2^n, batch)``).

        Returns a new array of the same shape; the input is untouched.
        """
        state = np.asarray(state)
        if state.ndim > 2:
            raise CompileError(
                f"expected a (dim,) vector or a (dim, batch) array, got shape "
                f"{state.shape}"
            )
        if state.shape[0] != 1 << self.num_qubits:
            raise CompileError(
                f"state of dimension {state.shape[0]} does not fit a "
                f"{self.num_qubits}-qubit plan"
            )
        batched = state.ndim > 1
        shape = state.shape
        tensor_shape = (2,) * self.num_qubits + shape[1:]
        psi = np.array(state, dtype=complex, copy=True).reshape(tensor_shape)
        scratch = np.empty_like(psi)
        extra = (slice(None),) * (len(shape) - 1)
        ops = self._baked_ops()
        for _ in range(self.steps):
            for op in ops:
                if isinstance(op, _DiagonalOp):
                    table = op.table
                    psi *= table[..., None] if batched else table
                else:
                    table_b = op.table_b[..., None] if batched else op.table_b
                    np.multiply(psi[op.flip + extra], table_b, out=scratch)
                    if op.sign_parity is not None:
                        odd = op.sign_parity
                        np.negative(
                            scratch,
                            out=scratch,
                            where=odd[..., None] if batched else odd,
                        )
                    psi *= op.table_a[..., None] if batched else op.table_a
                    psi += scratch
        total_phase = self.step_phase * self.steps
        if total_phase:
            psi *= np.exp(1j * total_phase)
        return psi.reshape(shape)

    def describe(self) -> str:
        return (
            f"EvolutionPlan({self.strategy!r}: {len(self.step_groups)} "
            f"fragment groups ({len(self.step_rotations)} rotations)/step × "
            f"{self.steps} steps on {self.num_qubits} qubits)"
        )


def plan_group_key(
    problem_payload: dict,
    strategy: str,
    *,
    backend: str = "kernel",
    shared_kwargs: "dict | None" = None,
) -> str:
    """Canonical batch-grouping key of one grid point.

    Two runtime grid points with equal keys compile to the *same*
    :class:`EvolutionPlan` (same canonical problem, same strategy) and share
    every run argument that shapes the computation — only the per-point batch
    axis (an initial state, a sampling stream) differs.  The runtime executors
    gather such points into one chunk and execute them as a single vectorized
    ``(dim, B)`` evolution, so a 12-repeat grid point costs one plan replay
    instead of twelve.

    ``problem_payload`` is the problem's **canonical** dict form (the hashed/
    executed payload of :meth:`~repro.runtime.spec.RunSpec.to_dict`);
    ``shared_kwargs`` are the run kwargs *minus* the batch axis.
    """
    from repro.utils.serialization import content_hash

    return content_hash(
        {
            "problem": problem_payload,
            "strategy": strategy.lower(),
            "backend": backend,
            "run_kwargs": dict(shared_kwargs or {}),
        },
        tag="planbatch",
    )


def _parity_of(values: np.ndarray) -> np.ndarray:
    """Bit parity per element, sharing the popcount (and its old-NumPy
    fallback) with :mod:`repro.circuits.pauli_kernels`."""
    from repro.circuits.pauli_kernels import _popcount

    return (_popcount(values) & 1).astype(bool)


def _schedule(num_fragments: int, order: int) -> list[tuple[int, float]]:
    """The fragment visit order of one product-formula step.

    Returns ``(fragment_index, fraction)`` pairs where ``fraction`` scales the
    step slice ``dt`` — the mask-level mirror of
    :func:`repro.core.trotter._formula_step` (Suzuki recursion included).
    """
    forward = list(range(num_fragments))
    if order == 1:
        return [(i, 1.0) for i in forward]
    if order == 2:
        return [(i, 0.5) for i in forward] + [(i, 0.5) for i in reversed(forward)]
    k = order // 2
    u_k = 1.0 / (4.0 - 4.0 ** (1.0 / (2 * k - 1)))
    inner = _schedule(num_fragments, order - 2)
    outer = [(i, frac * u_k) for i, frac in inner]
    middle = [(i, frac * (1.0 - 4.0 * u_k)) for i, frac in inner]
    return outer * 2 + middle + outer * 2


def _merged_schedule(num_fragments: int, order: int) -> list[tuple[int, float]]:
    """The schedule with consecutive visits of the same fragment coalesced.

    Exact: repeated factors of one fragment are exponentials of proportional
    generators, so their angles add (this absorbs the order-2 turnaround and
    the Suzuki recursion boundaries).
    """
    merged: list[tuple[int, float]] = []
    for index, fraction in _schedule(num_fragments, order):
        if merged and merged[-1][0] == index:
            merged[-1] = (index, merged[-1][1] + fraction)
        else:
            merged.append((index, fraction))
    return merged


def _check_table_width(entries, label: str) -> None:
    """Refuse fragments whose factored support table would still be huge.

    Applies the exact :func:`_factor_z_masks` policy the baking uses: after
    peeling off the common Z component, the residual support is bounded by the
    fragment's transition + number qubits; a fragment keeping more than
    :data:`_MAX_TABLE_BITS` residual Z-active qubits (2^14+ table entries)
    has no compact plan representation.
    """
    _, residual = _factor_z_masks([z_mask for _, z_mask, _, _ in entries])
    if bin(residual).count("1") > _MAX_TABLE_BITS:
        raise PlanLoweringError(
            f"fragment {label!r} keeps {bin(residual).count('1')} residual "
            f"Z-active qubits after factoring; the support table would exceed "
            f"2^{_MAX_TABLE_BITS} entries"
        )


def _fragment_masks(pauli_operator) -> list[tuple[int, int, complex, float]]:
    """Lower a Pauli operator to ``(x, z, phase, coefficient)`` tuples."""
    lowered = []
    for string, coeff in pauli_operator.items():
        coeff = complex(coeff)
        if abs(coeff.imag) > 1e-10:
            raise PlanLoweringError(
                f"Pauli term {string} has a non-real coefficient {coeff:.3g}; "
                "the schedule is not a Hermitian evolution"
            )
        x_mask, z_mask, phase = pauli_masks(str(string))
        lowered.append((x_mask, z_mask, phase, coeff.real))
    return lowered


def lower_problem(problem: "SimulationProblem", strategy: str) -> EvolutionPlan:
    """Lower a problem's Trotter schedule for the given evolution strategy.

    Raises :class:`PlanLoweringError` when the pair cannot be represented as a
    mask plan: non-evolution strategies, direct fragments whose strings do not
    share an X mask (impossible for SCB terms, checked defensively), or the
    ``complex_mode="trotter_split"`` option paired with complex transition
    coefficients (there the circuit intentionally carries a splitting error
    the exact plan would not reproduce).
    """
    if strategy not in LOWERABLE_STRATEGIES:
        raise PlanLoweringError(
            f"strategy {strategy!r} does not lower to a mask plan "
            f"(supported: {', '.join(LOWERABLE_STRATEGIES)})"
        )

    fragments: list[list[tuple[int, int, complex, float]]] = []
    if strategy == "pauli":
        # One single-string group per Pauli term, in pauli_fragments() order.
        for entry in _fragment_masks(problem.pauli_operator()):
            fragments.append([entry])
    else:
        split_mode = problem.options.complex_mode == "trotter_split"
        for fragment in problem.hamiltonian.hermitian_fragments():
            term = fragment.term
            if (
                split_mode
                and fragment.include_hc
                and abs(complex(term.coefficient).imag) > 1e-12
                and term.transition_qubits
            ):
                raise PlanLoweringError(
                    f"fragment {term.label!r} with a complex coefficient under "
                    "complex_mode='trotter_split' carries a deliberate "
                    "splitting error the exact mask plan would not reproduce"
                )
            entries = _fragment_masks(fragment.to_pauli())
            if len({x for x, _, _, _ in entries}) > 1:
                raise PlanLoweringError(
                    f"fragment {term.label!r} decomposes into strings with "
                    "mixed X masks; not a single permutation-diagonal block"
                )
            _check_table_width(entries, term.label)
            fragments.append(entries)

    dt = problem.time / problem.steps
    groups: list[tuple[MaskRotation, ...]] = []
    step_phase = 0.0
    for index, fraction in _merged_schedule(len(fragments), problem.order):
        group = []
        for x_mask, z_mask, phase, coefficient in fragments[index]:
            theta = coefficient * fraction * dt
            if x_mask == 0 and z_mask == 0:
                step_phase -= theta
            else:
                group.append(MaskRotation(x_mask, z_mask, phase, theta))
        if group:
            groups.append(tuple(group))
    return EvolutionPlan(
        num_qubits=problem.num_qubits,
        steps=problem.steps,
        step_groups=tuple(groups),
        step_phase=step_phase,
        strategy=strategy,
    )
