"""Shared helpers for the resilience suite."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

import repro
from repro.utils.serialization import canonical_json

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def make_problem(**kwargs):
    kwargs.setdefault("time", 0.3)
    kwargs.setdefault("name", "resilience-test")
    return repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3}, **kwargs
    )


def sweep_payloads(**kwargs) -> "list[dict]":
    """Canonical RunSpec payloads for a small deterministic sampling sweep.

    The defaults give the 8-point certification grid (2 strategies × 4 step
    counts, seeded sampling); ``repeats=2`` doubles it to the 16-point one.
    """
    from repro.runtime import SweepSpec

    kwargs.setdefault("strategies", ("direct", "pauli"))
    kwargs.setdefault("steps", (1, 2, 4, 8))
    kwargs.setdefault("backend", "sampling")
    kwargs.setdefault("run_kwargs", {"shots": 256})
    kwargs.setdefault("seed", 11)
    sweep = SweepSpec(problem=make_problem(), **kwargs)
    return [spec.to_dict() for _, spec in sweep.expand()]


def clean_serial(payloads: "list[dict]") -> "list[dict]":
    """The fault-free reference: every payload through ``execute_spec``."""
    from repro.runtime.executor import execute_spec

    return [execute_spec(payload) for payload in payloads]


def assert_outcomes_identical(outcomes, expected) -> None:
    """Bit-identical comparison robust to one JSON round trip on the wire."""
    assert len(outcomes) == len(expected)
    for got, want in zip(outcomes, expected):
        assert want["ok"], want.get("error")
        assert got["ok"], got.get("error")
        assert canonical_json(got["result"]) == canonical_json(want["result"])
        got_arrays = got.get("arrays") or {}
        want_arrays = want.get("arrays") or {}
        assert set(got_arrays) == set(want_arrays)
        for name in want_arrays:
            np.testing.assert_array_equal(
                np.asarray(got_arrays[name]), np.asarray(want_arrays[name])
            )


def shm_segments() -> "set[str]":
    """Names of live repro shared-memory segments on this machine."""
    root = Path("/dev/shm")
    if not root.exists():
        return set()
    return {path.name for path in root.glob("repro_*")}
