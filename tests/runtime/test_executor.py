"""Executors: ordering, chunking, progress, failure capture, worker parity."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import SpecError
from repro.runtime import (
    ProcessExecutor,
    RunSpec,
    SerialExecutor,
    execute_spec,
    resolve_executor,
)


def _square(x):
    return x * x


def problem(**kwargs):
    kwargs.setdefault("time", 0.3)
    return repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3, "XIXI": 0.2}, **kwargs
    )


class TestSerialExecutor:
    def test_map_preserves_order_and_reports_progress(self):
        seen = []
        result = SerialExecutor().map(
            _square, range(5), progress=lambda done, total: seen.append((done, total))
        )
        assert result == [0, 1, 4, 9, 16]
        assert seen == [(i, 5) for i in range(1, 6)]


class TestProcessExecutor:
    def test_map_matches_serial(self):
        items = list(range(23))
        serial = SerialExecutor().map(_square, items)
        pooled = ProcessExecutor(4, chunk_size=3).map(_square, items)
        assert pooled == serial

    def test_progress_reaches_total(self):
        seen = []
        ProcessExecutor(2, chunk_size=2).map(
            _square, range(7), progress=lambda d, t: seen.append((d, t))
        )
        assert seen[-1] == (7, 7)
        assert all(t == 7 for _, t in seen)

    def test_single_item_runs_in_process(self):
        assert ProcessExecutor(4).map(_square, [3]) == [9]

    def test_empty(self):
        assert ProcessExecutor(2).map(_square, []) == []

    def test_default_chunking(self):
        executor = ProcessExecutor(2)
        assert executor._resolve_chunk(100) == 13  # ceil(100 / 8)
        assert executor._resolve_chunk(1) == 1

    def test_invalid_parameters(self):
        with pytest.raises(SpecError):
            ProcessExecutor(0)
        with pytest.raises(SpecError):
            ProcessExecutor(2, chunk_size=0)


class TestResolveExecutor:
    def test_resolution_table(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        pool = resolve_executor(3)
        assert isinstance(pool, ProcessExecutor) and pool.n_workers == 3
        explicit = ProcessExecutor(2)
        assert resolve_executor(explicit) is explicit
        with pytest.raises(SpecError):
            resolve_executor("four")
        with pytest.raises(SpecError):
            resolve_executor(True)


class TestExecuteSpec:
    def test_success_outcome(self):
        payload = RunSpec(problem=problem()).to_dict(canonical=True)
        outcome = execute_spec(payload)
        assert outcome["ok"] and outcome["result"]["kind"] == "statevector"
        assert outcome["wall_time"] > 0

    def test_failure_outcome_records_traceback(self):
        payload = RunSpec(
            problem=problem(), backend="exact", run_kwargs={"bogus": 1}
        ).to_dict(canonical=True)
        outcome = execute_spec(payload)
        assert not outcome["ok"]
        assert outcome["error"]["type"] == "CompileError"
        assert "bogus" in outcome["error"]["message"]
        assert "Traceback" in outcome["error"]["traceback"]

    def test_garbage_payload_is_captured_not_raised(self):
        outcome = execute_spec({"spec": "run"})  # no problem at all
        assert not outcome["ok"] and outcome["error"]["type"] == "KeyError"


@pytest.mark.slow
class TestCrossProcessParity:
    def test_pool_outcomes_match_in_process(self):
        specs = [
            RunSpec(
                problem=problem(steps=k), backend="sampling",
                run_kwargs={"shots": 128, "rng": 7},
            ).to_dict(canonical=True)
            for k in (1, 2, 3, 4)
        ]
        local = [execute_spec(s) for s in specs]
        pooled = ProcessExecutor(2, chunk_size=1).map(execute_spec, specs)
        for a, b in zip(local, pooled):
            assert a["ok"] and b["ok"]
            assert a["result"]["counts"] == b["result"]["counts"]


class TestPicklabilityFailFast:
    def test_lambda_callable_is_a_clear_runtime_error(self):
        pool = ProcessExecutor(2)
        with pytest.raises(RuntimeError, match="cannot pickle the callable"):
            pool.map(lambda x: x, [1, 2, 3])

    def test_unpicklable_item_names_the_slice(self):
        pool = ProcessExecutor(2, chunk_size=2)
        items = [1, 2, (lambda: None), 4]  # chunk [2:4] holds the offender
        with pytest.raises(RuntimeError, match=r"could not pickle items"):
            pool.map(_square, items)

    def test_single_worker_serial_path_still_works_with_lambdas(self):
        # max_workers=1 short-circuits to in-process execution: no pickling.
        assert ProcessExecutor(1).map(lambda x: x + 1, [1, 2]) == [2, 3]
