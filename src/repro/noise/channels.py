"""Quantum channels in Kraus (operator-sum) representation.

A channel ``E(ρ) = Σ_i K_i ρ K_i†`` is stored as its tuple of Kraus operators.
The factories below cover the standard error families every noisy-simulation
study needs — depolarizing, amplitude damping, phase damping, bit/phase flip —
plus :class:`ReadoutError`, which is *classical* noise on the measurement
record (a per-qubit confusion matrix applied to outcome probabilities) rather
than a channel on the state.

Channels compose (:meth:`KrausChannel.compose`), tensor
(:meth:`KrausChannel.tensor`), and validate themselves:
:meth:`~KrausChannel.is_cptp` checks the trace-preservation condition
``Σ_i K_i† K_i = I`` (complete positivity is automatic in Kraus form), and the
Pauli-transfer-matrix view (:meth:`~KrausChannel.to_ptm`) follows the
representation the ``quantumsim`` lineage of simulators uses for diagnostics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ReproError


class NoiseError(ReproError):
    """Raised for malformed channels, noise models or sampling requests."""


#: Single-qubit Pauli basis used by the PTM representation.
_PAULIS = (
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)


def _pauli_basis(num_qubits: int) -> list[np.ndarray]:
    """The ``4^n`` tensor-product Pauli matrices, identity first."""
    basis = [np.array([[1.0]], dtype=complex)]
    for _ in range(num_qubits):
        basis = [np.kron(b, p) for b in basis for p in _PAULIS]
    return basis


class KrausChannel:
    """A completely positive map given by its Kraus operators.

    Parameters
    ----------
    kraus:
        Sequence of equally-shaped ``2^k × 2^k`` matrices.
    name:
        Short tag used in reports and ``repr``.
    check:
        Validate trace preservation at construction (default). Disable only
        for deliberately non-trace-preserving maps (e.g. post-selection).
    """

    def __init__(
        self,
        kraus: Sequence[np.ndarray],
        name: str = "channel",
        *,
        check: bool = True,
    ):
        operators = tuple(np.asarray(k, dtype=complex) for k in kraus)
        if not operators:
            raise NoiseError("a channel needs at least one Kraus operator")
        dim = operators[0].shape[0]
        if dim == 0 or dim & (dim - 1):
            raise NoiseError(f"Kraus dimension {dim} is not a power of two")
        for op in operators:
            if op.ndim != 2 or op.shape != (dim, dim):
                raise NoiseError(
                    f"all Kraus operators must be {dim}x{dim}, got {op.shape}"
                )
        self.kraus = operators
        self.name = name
        self._num_qubits = dim.bit_length() - 1
        if check and not self.is_cptp():
            raise NoiseError(
                f"channel {name!r} is not trace preserving: sum K_i^† K_i != I "
                "(pass check=False for deliberately non-CPTP maps)"
            )

    # ------------------------------------------------------------------ queries

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def dim(self) -> int:
        return 1 << self._num_qubits

    @property
    def num_kraus(self) -> int:
        return len(self.kraus)

    def is_cptp(self, atol: float = 1e-9) -> bool:
        """Whether ``Σ_i K_i† K_i = I`` (the map is CPTP).

        A Kraus decomposition is completely positive by construction, so
        trace preservation is the only condition left to verify.
        """
        total = sum(op.conj().T @ op for op in self.kraus)
        return bool(np.allclose(total, np.eye(self.dim), atol=atol, rtol=0.0))

    def is_unital(self, atol: float = 1e-9) -> bool:
        """Whether the channel fixes the maximally mixed state (``Σ K_i K_i† = I``)."""
        total = sum(op @ op.conj().T for op in self.kraus)
        return bool(np.allclose(total, np.eye(self.dim), atol=atol, rtol=0.0))

    # ------------------------------------------------------------- composition

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Channel applying ``other`` first, then ``self`` (``self ∘ other``)."""
        if other.num_qubits != self.num_qubits:
            raise NoiseError(
                f"cannot compose a {self.num_qubits}-qubit channel with a "
                f"{other.num_qubits}-qubit one"
            )
        kraus = [a @ b for a in self.kraus for b in other.kraus]
        return KrausChannel(
            kraus, name=f"{self.name}∘{other.name}", check=False
        )

    def tensor(self, other: "KrausChannel") -> "KrausChannel":
        """The product channel ``self ⊗ other`` on the joint register."""
        kraus = [np.kron(a, b) for a in self.kraus for b in other.kraus]
        return KrausChannel(kraus, name=f"{self.name}⊗{other.name}", check=False)

    # ---------------------------------------------------------- representations

    def apply_to(self, rho: np.ndarray) -> np.ndarray:
        """``Σ_i K_i ρ K_i†`` for a dense density matrix of matching dimension.

        The tensorized fast path for full-register states lives in
        :meth:`repro.circuits.density_matrix.DensityMatrix.apply_channel`;
        this dense form is the reference the tests check it against.
        """
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self.dim, self.dim):
            raise NoiseError(
                f"density matrix shape {rho.shape} does not match channel "
                f"dimension {self.dim}"
            )
        out = np.zeros_like(rho)
        for op in self.kraus:
            out += op @ rho @ op.conj().T
        return out

    def to_ptm(self) -> np.ndarray:
        """Pauli transfer matrix ``R_ij = Tr[P_i E(P_j)] / 2^n`` (real)."""
        basis = _pauli_basis(self.num_qubits)
        dim = self.dim
        ptm = np.empty((len(basis), len(basis)))
        for j, pj in enumerate(basis):
            image = self.apply_to(pj)
            for i, pi in enumerate(basis):
                ptm[i, j] = np.real(np.trace(pi @ image)) / dim
        return ptm

    def to_superoperator(self) -> np.ndarray:
        """Column-stacking superoperator ``Σ_i conj(K_i) ⊗ K_i``."""
        return sum(np.kron(op.conj(), op) for op in self.kraus)

    @classmethod
    def from_unitary(cls, matrix: np.ndarray, name: str = "unitary") -> "KrausChannel":
        """The noiseless channel ``ρ ↦ U ρ U†``."""
        return cls([np.asarray(matrix, dtype=complex)], name=name)

    # ----------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-able form: name plus Kraus matrices as ``[re, im]`` rows."""
        from repro.utils.serialization import matrix_to_json

        return {
            "name": self.name,
            "kraus": [matrix_to_json(op) for op in self.kraus],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KrausChannel":
        """Inverse of :meth:`to_dict`.

        Validation is skipped on reconstruction: the operators were checked
        when the channel was first built, and deliberately non-CPTP channels
        must round-trip too.
        """
        from repro.utils.serialization import matrix_from_json

        return cls(
            [matrix_from_json(op) for op in payload["kraus"]],
            name=payload.get("name", "channel"),
            check=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"KrausChannel({self.name!r}, num_qubits={self.num_qubits}, "
            f"num_kraus={self.num_kraus})"
        )


# ---------------------------------------------------------------------------
# Standard channel factories
# ---------------------------------------------------------------------------


def _check_probability(name: str, p: float, upper: float = 1.0) -> float:
    p = float(p)
    if not 0.0 <= p <= upper:
        raise NoiseError(f"{name} must lie in [0, {upper:g}], got {p!r}")
    return p


def depolarizing_channel(p: float, num_qubits: int = 1) -> KrausChannel:
    """Uniform depolarizing channel ``ρ ↦ (1-p)ρ + p·I/2^n``.

    In Kraus form the ``4^n - 1`` non-identity Pauli operators each carry
    weight ``p / 4^n`` and the identity keeps ``1 - p + p/4^n``.
    """
    p = _check_probability("depolarizing probability", p)
    if num_qubits < 1:
        raise NoiseError("depolarizing_channel needs at least one qubit")
    basis = _pauli_basis(num_qubits)
    dim = 1 << num_qubits
    rate = p / dim**2
    kraus = [np.sqrt(1.0 - p + rate) * basis[0]]
    kraus += [np.sqrt(rate) * pauli for pauli in basis[1:]]
    return KrausChannel(kraus, name=f"depolarizing(p={p:g})")


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Energy relaxation ``|1⟩ → |0⟩`` with probability ``gamma`` (T1 decay)."""
    gamma = _check_probability("gamma", gamma)
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return KrausChannel([k0, k1], name=f"amplitude_damping(γ={gamma:g})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing: off-diagonals shrink by ``sqrt(1-λ)`` (T2 decay)."""
    lam = _check_probability("lambda", lam)
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, np.sqrt(lam)]], dtype=complex)
    return KrausChannel([k0, k1], name=f"phase_damping(λ={lam:g})")


def bit_flip_channel(p: float) -> KrausChannel:
    """``X`` applied with probability ``p``."""
    p = _check_probability("flip probability", p)
    return KrausChannel(
        [np.sqrt(1.0 - p) * _PAULIS[0], np.sqrt(p) * _PAULIS[1]],
        name=f"bit_flip(p={p:g})",
    )


def phase_flip_channel(p: float) -> KrausChannel:
    """``Z`` applied with probability ``p``."""
    p = _check_probability("flip probability", p)
    return KrausChannel(
        [np.sqrt(1.0 - p) * _PAULIS[0], np.sqrt(p) * _PAULIS[3]],
        name=f"phase_flip(p={p:g})",
    )


def bit_phase_flip_channel(p: float) -> KrausChannel:
    """``Y`` applied with probability ``p``."""
    p = _check_probability("flip probability", p)
    return KrausChannel(
        [np.sqrt(1.0 - p) * _PAULIS[0], np.sqrt(p) * _PAULIS[2]],
        name=f"bit_phase_flip(p={p:g})",
    )


def pauli_channel(probabilities: Sequence[float]) -> KrausChannel:
    """Single-qubit Pauli channel with ``(p_x, p_y, p_z)`` error weights."""
    px, py, pz = (_check_probability("pauli probability", p) for p in probabilities)
    total = px + py + pz
    if total > 1.0 + 1e-12:
        raise NoiseError(f"pauli probabilities sum to {total:g} > 1")
    weights = (max(1.0 - total, 0.0), px, py, pz)
    kraus = [
        np.sqrt(w) * pauli for w, pauli in zip(weights, _PAULIS) if w > 0.0
    ]
    return KrausChannel(kraus, name=f"pauli(px={px:g},py={py:g},pz={pz:g})")


# ---------------------------------------------------------------------------
# Readout error — classical noise on the measurement record
# ---------------------------------------------------------------------------


class ReadoutError:
    """Per-qubit assignment error: a 2×2 confusion matrix on outcomes.

    ``confusion[j, i]`` is the probability of *recording* bit ``j`` when the
    true bit is ``i``; columns must sum to one. Symmetric readout error with
    flip probability ``p`` is ``ReadoutError.symmetric(p)``.
    """

    def __init__(self, confusion: np.ndarray):
        confusion = np.asarray(confusion, dtype=float)
        if confusion.shape != (2, 2):
            raise NoiseError(f"confusion matrix must be 2x2, got {confusion.shape}")
        if np.any(confusion < -1e-12):
            raise NoiseError("confusion matrix entries must be non-negative")
        if not np.allclose(confusion.sum(axis=0), 1.0, atol=1e-9):
            raise NoiseError("confusion matrix columns must each sum to 1")
        self.confusion = np.clip(confusion, 0.0, 1.0)

    @classmethod
    def symmetric(cls, p: float) -> "ReadoutError":
        """Both ``0→1`` and ``1→0`` misreads happen with probability ``p``."""
        p = _check_probability("readout flip probability", p)
        return cls(np.array([[1.0 - p, p], [p, 1.0 - p]]))

    @classmethod
    def asymmetric(cls, p01: float, p10: float) -> "ReadoutError":
        """``p01``: record 1 on a true 0; ``p10``: record 0 on a true 1."""
        p01 = _check_probability("p01", p01)
        p10 = _check_probability("p10", p10)
        return cls(np.array([[1.0 - p01, p10], [p01, 1.0 - p10]]))

    def apply_to_probabilities(
        self, probs: np.ndarray, qubits: Sequence[int] | None = None
    ) -> np.ndarray:
        """Mix a ``2^n`` outcome-probability vector through the confusion matrix.

        ``qubits`` restricts the error to a subset (default: every qubit).
        The vector is reshaped to ``(2,)*n`` and the confusion matrix is
        contracted into each affected qubit axis — one tensordot per qubit,
        no loop over outcomes.
        """
        probs = np.asarray(probs, dtype=float)
        dim = probs.shape[0]
        n = dim.bit_length() - 1
        if 1 << n != dim:
            raise NoiseError(f"probability vector length {dim} is not a power of two")
        targets = range(n) if qubits is None else qubits
        tensor = probs.reshape((2,) * n if n else (1,))
        for q in targets:
            if not 0 <= q < n:
                raise NoiseError(f"readout qubit {q} out of range for {n} qubits")
            moved = np.tensordot(self.confusion, tensor, axes=([1], [q]))
            tensor = np.moveaxis(moved, 0, q)
        return tensor.reshape(-1)

    def to_dict(self) -> dict:
        """JSON-able form: the 2×2 confusion matrix as nested float lists."""
        return {"confusion": [[float(x) for x in row] for row in self.confusion]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ReadoutError":
        """Inverse of :meth:`to_dict`."""
        return cls(np.array(payload["confusion"], dtype=float))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ReadoutError(p01={self.confusion[1, 0]:g}, p10={self.confusion[0, 1]:g})"
