"""The ``repro.*`` logging hierarchy.

Library modules log through ``logging.getLogger("repro.<area>")`` and never
configure handlers — ``repro/__init__`` attaches a :class:`~logging.NullHandler`
so importing the library stays silent, as a library should.  Entry points
(the ``repro.runtime`` / ``repro.service`` / ``repro.telemetry`` CLIs and the
daemon) call :func:`configure_logging` to attach a stderr handler whose level
comes from ``REPRO_LOG`` (default ``WARNING``), which is how lost leases,
reaped shm segments, and quarantined job files become visible.
"""

from __future__ import annotations

import logging
import os

LOG_ENV = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def log_level() -> int:
    """The level ``REPRO_LOG`` asks for (name or number; default WARNING)."""
    raw = os.environ.get(LOG_ENV, "").strip().lower()
    if raw in _LEVELS:
        return _LEVELS[raw]
    if raw.isdigit():
        return int(raw)
    return logging.WARNING


def configure_logging(level: "int | str | None" = None) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    Called from CLI entry points, not on import.  A second call only
    adjusts the level, so tests and nested CLIs never stack handlers.
    """
    if isinstance(level, str):
        level = _LEVELS.get(level.strip().lower(), logging.WARNING)
    if level is None:
        level = log_level()
    root = logging.getLogger("repro")
    configured = any(
        not isinstance(handler, logging.NullHandler) for handler in root.handlers
    )
    if not configured:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)
    return root
