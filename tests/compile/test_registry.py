"""Registry round-trips for strategies and backends."""

from __future__ import annotations

import pytest

from repro.compile.backends import BACKENDS, available_backends, get_backend
from repro.compile.problem import SimulationProblem
from repro.compile.registry import Registry
from repro.compile.strategies import (
    STRATEGIES,
    Strategy,
    available_strategies,
    get_strategy,
)
from repro.exceptions import CompileError
from repro.operators.hamiltonian import Hamiltonian


class TestRegistryMechanics:
    def test_register_create_roundtrip(self):
        registry = Registry("widget")

        @registry.register("thing")
        class Thing:
            pass

        assert "thing" in registry
        assert isinstance(registry.create("thing"), Thing)
        assert isinstance(registry.create("THING"), Thing)
        registry.unregister("thing")
        assert "thing" not in registry

    def test_unknown_name_lists_available(self):
        with pytest.raises(CompileError, match="available:"):
            STRATEGIES.create("nope")


class TestBuiltinRegistrations:
    def test_all_strategies_registered(self):
        assert set(available_strategies()) >= {"direct", "pauli", "block_encoding", "mpf"}

    def test_all_backends_registered(self):
        assert set(available_backends()) >= {"statevector", "unitary", "resource"}

    def test_get_strategy_by_name_and_instance(self):
        direct = get_strategy("direct")
        assert direct.name == "direct"
        assert get_strategy(direct) is direct
        assert isinstance(direct, Strategy)

    def test_get_backend_by_name_and_instance(self):
        backend = get_backend("statevector")
        assert backend.name == "statevector"
        assert get_backend(backend) is backend

    def test_get_strategy_rejects_non_strategy(self):
        with pytest.raises(CompileError):
            get_strategy(3.14)


class TestCustomPlugin:
    def test_custom_strategy_plugs_into_pipeline(self):
        from repro.circuits.circuit import QuantumCircuit
        from repro.compile.pipeline import compile_problem
        from repro.compile.strategies import ResourceEstimate

        @STRATEGIES.register("identity-test")
        class IdentityStrategy:
            name = "identity-test"
            kind = "evolution"

            def build(self, problem):
                return QuantumCircuit(problem.num_qubits, "identity")

            def estimate_resources(self, problem):
                return ResourceEstimate(
                    strategy=self.name,
                    fragments=0,
                    rotations=0,
                    two_qubit_gates=0,
                    formula_passes=1,
                )

        try:
            problem = SimulationProblem(Hamiltonian.from_labels(2, {"ZI": 0.5}), 0.1)
            program = compile_problem(problem, "identity-test")
            assert program.circuit.size() == 0
            assert program.run(backend="resource").fragments == 0
        finally:
            STRATEGIES.unregister("identity-test")
