"""ServiceClient: the Executor seam, fleet end-to-end, dedup and cancel."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import SpecError
from repro.runtime import RunSpec, SerialExecutor, Session, SweepSpec
from repro.service.client import ServiceClient
from repro.service.worker import run_worker

from _service_helpers import make_problem, wait_until


def sampling_axes():
    # 2 strategies × 4 step counts × 2 seeded repeats = 16 distinct points.
    return dict(
        strategies=("direct", "pauli"),
        steps=(1, 2, 4, 8),
        backend="sampling",
        run_kwargs={"shots": 128},
        seed=7,
        repeats=2,
    )


@pytest.fixture
def fleet(make_daemon):
    """A workerless daemon drained by two external workers (thread-hosted)."""
    daemon = make_daemon(local_workers=0, chunk_size=2, lease_seconds=10.0)
    client = ServiceClient(daemon.socket_path)
    threads = [
        threading.Thread(
            target=run_worker,
            args=(daemon.socket_path,),
            kwargs={"worker_id": f"external-{i}", "poll_interval": 0.02},
            daemon=True,
        )
        for i in range(2)
    ]
    for thread in threads:
        thread.start()
    yield daemon, client, threads
    daemon.shutdown()
    for thread in threads:
        thread.join(timeout=10.0)
    assert not any(thread.is_alive() for thread in threads), "worker leaked"


class TestFleetEndToEnd:
    def test_16_point_sweep_is_bit_identical_to_serial(self, fleet):
        daemon, client, _ = fleet
        problem = make_problem()
        remote = Session(cache=False, executor=client)
        serial = Session(cache=False, executor=SerialExecutor())
        got = remote.sweep(problem, **sampling_axes())
        want = serial.sweep(problem, **sampling_axes())
        assert len(got) == 16 and got.ok and want.ok
        for ours, theirs in zip(got, want):
            assert ours.key == theirs.key
            assert ours.value.counts == theirs.value.counts  # seeded: bitwise
        # Both external workers actually participated.
        workers = {w["worker_id"]: w for w in client.workers()}
        assert workers["external-0"]["points_completed"] > 0
        assert workers["external-1"]["points_completed"] > 0

    def test_statevector_results_cross_the_wire_losslessly(self, fleet):
        _, client, _ = fleet
        problem = make_problem()
        remote = Session(cache=False, executor=client)
        serial = Session(cache=False, executor=SerialExecutor())
        got = remote.sweep(problem, strategies=("direct",), steps=(1, 2))
        want = serial.sweep(problem, strategies=("direct",), steps=(1, 2))
        for ours, theirs in zip(got, want):
            np.testing.assert_array_equal(ours.value.data, theirs.value.data)

    def test_resubmitted_spec_is_served_from_cache_not_the_queue(self, fleet):
        daemon, client, _ = fleet
        spec = SweepSpec(problem=make_problem(), **sampling_axes())
        first = client.submit(spec)
        client.wait(first["job_id"], timeout=120.0)
        executed_before = client.stats()["points"]["executed"]
        # Same physics through the *other* submission path (a batch of
        # canonical payloads): every point is already in the shared cache.
        payloads = [run.to_dict(canonical=True) for _, run in spec.expand()]
        ack = client.submit_payloads(payloads)
        assert ack["state"] == "done" and ack["cached"] == 16
        assert client.stats()["points"]["executed"] == executed_before

    def test_progress_reaches_the_session_callback(self, fleet):
        _, client, _ = fleet
        seen = []
        session = Session(
            cache=False, executor=client, progress=lambda d, t: seen.append((d, t))
        )
        session.sweep(make_problem(), strategies=("direct",), steps=(1, 2, 3))
        assert seen and seen[-1] == (3, 3)


class TestClientApi:
    def test_map_refuses_arbitrary_callables(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        client = ServiceClient(daemon.socket_path)
        with pytest.raises(SpecError, match="execute_spec"):
            client.map(len, [{"spec": "run"}])

    def test_map_of_nothing_is_nothing(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        client = ServiceClient(daemon.socket_path)
        from repro.runtime.executor import execute_spec

        assert client.map(execute_spec, []) == []

    def test_cancel_through_the_client(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        client = ServiceClient(daemon.socket_path)
        ack = client.submit(SweepSpec(problem=make_problem(), steps=(1, 2, 3)))
        cancelled = client.cancel(ack["job_id"])
        assert cancelled["state"] == "cancelled"
        assert client.wait(ack["job_id"], timeout=5.0)["state"] == "cancelled"
        outcomes = client.result(ack["job_id"])
        assert all(o["error"]["type"] == "CancelledError" for o in outcomes)

    def test_records_decodes_values(self, make_daemon):
        daemon = make_daemon(local_workers=1)
        client = ServiceClient(daemon.socket_path)
        ack = client.submit(RunSpec(problem=make_problem(), backend="statevector"))
        client.wait(ack["job_id"], timeout=60.0)
        (record,) = client.records(ack["job_id"])
        assert record["ok"] and hasattr(record["value"], "data")

    def test_ping_and_jobs_listing(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        client = ServiceClient(daemon.socket_path)
        assert client.ping()["pong"]
        assert client.jobs() == []
        client.submit(RunSpec(problem=make_problem(), backend="resource"))
        assert len(client.jobs()) == 1

    def test_shutdown_lets_workers_drain_and_exit(self, make_daemon):
        daemon = make_daemon(local_workers=0)
        client = ServiceClient(daemon.socket_path)
        worker = threading.Thread(
            target=run_worker,
            args=(daemon.socket_path,),
            kwargs={"worker_id": "drainer", "poll_interval": 0.02},
            daemon=True,
        )
        worker.start()
        client.shutdown_daemon()
        wait_until(lambda: not daemon.running)
        daemon.shutdown()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert not daemon.socket_path.exists()
