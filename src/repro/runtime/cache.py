"""Content-addressed on-disk result store.

Each entry is addressed by a :meth:`~repro.runtime.spec.RunSpec.content_key`
and stored as a JSON sidecar (metadata + scalar payloads) plus an optional
``.npz`` (array payloads), sharded by the first two hex digits of the key.
The store is versioned — entries live under ``v{SPEC_VERSION}/`` so a change
to the canonical serialization scheme starts a fresh namespace instead of
serving stale bytes — and size-capped with least-recently-*used* eviction
(the sidecar's mtime is touched on every hit).

Configuration follows the environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro``);
* ``REPRO_CACHE_MAX_BYTES`` — size cap (default 2 GiB; ``0`` disables
  eviction).

Only the parent process writes the cache (workers return payloads over the
pipe), and every write is atomic (temp file + ``os.replace``), so concurrent
sessions never observe a torn entry.
"""

from __future__ import annotations

import json
import logging
import os
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.resilience import fault_point
from repro.telemetry import metrics, span
from repro.utils.serialization import SPEC_VERSION, canonical_json
from repro.runtime.results import decode_result, encode_result

logger = logging.getLogger("repro.runtime.cache")

#: Environment override for the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment override for the eviction size cap (bytes).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Default size cap: 2 GiB.
DEFAULT_MAX_BYTES = 2 * 1024**3

#: Returned by :meth:`ResultCache.get` misses (``None`` is a valid value).
MISS = object()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored result (what ``cache ls`` prints)."""

    key: str
    kind: str
    size_bytes: int
    created: float
    last_used: float
    label: str | None = None


class ResultCache:
    """Content-addressed ``key → result`` store on disk.

    Parameters
    ----------
    directory:
        Cache root; defaults to :func:`default_cache_dir`.  The versioned
        namespace ``v{SPEC_VERSION}`` is appended automatically.
    max_bytes:
        LRU size cap; defaults to ``$REPRO_CACHE_MAX_BYTES`` or 2 GiB.
        ``0`` disables eviction.
    """

    def __init__(
        self,
        directory: "str | Path | None" = None,
        *,
        max_bytes: int | None = None,
    ):
        root = Path(directory).expanduser() if directory is not None else default_cache_dir()
        self.directory = root / f"v{SPEC_VERSION}"
        if max_bytes is None:
            env = os.environ.get(CACHE_MAX_BYTES_ENV)
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        # Approximate store size, maintained incrementally so a sweep's
        # per-put eviction check is O(1); a full rescan happens only when
        # the estimate crosses the cap (and inside _evict itself).
        self._approx_bytes: int | None = None

    # ----------------------------------------------------------------- layout

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.directory / key[:2]
        return shard / f"{key}.json", shard / f"{key}.npz"

    # ------------------------------------------------------------------ access

    def get(self, key: str, default: Any = MISS) -> Any:
        """The decoded result for ``key``, or ``default`` on a miss.

        A cache that cannot be read degrades to a miss, never to a failed
        point: unreadable shards, corrupt sidecars, and truncated array
        files all recompute (counted in ``resilience.fallbacks``).
        """
        with span("cache.get") as sp:
            try:
                value = self._get(key, default)
            except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
                logger.warning(
                    "cache read failed for %s (%s: %s); recomputing",
                    key[:12], type(exc).__name__, exc,
                )
                metrics.incr("resilience.fallbacks")
                metrics.incr("cache.get_failures")
                self.misses += 1
                value = default
            hit = value is not default
            sp.set(hit=hit)
        metrics.incr("cache.hits" if hit else "cache.misses")
        return value

    def _get(self, key: str, default: Any) -> Any:
        fault_point("cache.get")
        sidecar, npz = self._paths(key)
        try:
            payload = json.loads(sidecar.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return default
        arrays: dict[str, np.ndarray] = {}
        if payload.get("has_arrays"):
            try:
                with np.load(npz) as stored:
                    arrays = {name: stored[name] for name in stored.files}
            except FileNotFoundError:
                # Torn entry (npz evicted/cleared out from under the sidecar).
                self.misses += 1
                return default
        value = decode_result(payload["result"], arrays)
        try:
            now = time.time()
            os.utime(sidecar, (now, now))  # LRU recency bump
        except OSError:
            # The entry was evicted/cleared by a concurrent session between
            # the read and the bump; the value in hand is still good.
            pass
        self.hits += 1
        return value

    def __contains__(self, key: str) -> bool:
        return self._paths(key)[0].exists()

    def put(self, key: str, value: Any, *, label: str | None = None) -> None:
        """Encode and store ``value`` under ``key`` (atomic, then evict)."""
        meta, arrays = encode_result(value)
        self.put_encoded(key, meta, arrays, label=label)

    def put_encoded(
        self,
        key: str,
        meta: dict,
        arrays: dict[str, np.ndarray],
        *,
        label: str | None = None,
    ) -> None:
        """Store an already-encoded ``(meta, arrays)`` pair (the worker path).

        Degrades gracefully: an :class:`OSError` (full disk, read-only or
        quarantined shard) is logged and counted, never raised — the caller
        keeps its computed result, it simply stays uncached.  A failure
        between the array write and the sidecar write leaves at worst an
        orphan npz, which reads as a miss and is swept by :meth:`stats`.
        """
        with span("cache.put", arrays=len(arrays)) as sp:
            try:
                self._put_encoded(key, meta, arrays, label=label)
            except OSError as exc:
                sp.set(failed=True)
                logger.warning(
                    "cache write failed for %s (%s: %s); "
                    "result stays uncached",
                    key[:12], type(exc).__name__, exc,
                )
                metrics.incr("resilience.fallbacks")
                metrics.incr("cache.put_failures")
                self._cleanup_partial(key)
                return
        metrics.incr("cache.puts")

    def _cleanup_partial(self, key: str) -> None:
        """Best-effort removal of a failed put's temp files (never raises)."""
        sidecar, npz = self._paths(key)
        for tmp in (npz.with_suffix(".npz.tmp"), sidecar.with_suffix(".json.tmp")):
            try:
                tmp.unlink()
            except OSError:
                pass

    def _put_encoded(
        self,
        key: str,
        meta: dict,
        arrays: dict[str, np.ndarray],
        *,
        label: str | None = None,
    ) -> None:
        fault_point("cache.put")
        sidecar, npz = self._paths(key)
        sidecar.parent.mkdir(parents=True, exist_ok=True)
        if arrays:
            tmp_npz = npz.with_suffix(".npz.tmp")
            with open(tmp_npz, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_npz, npz)
        # A crash (or injected fault) here is the torn-write window: the npz
        # exists but the sidecar — the entry's existence marker — does not,
        # so readers see a recoverable miss, never partial data.
        fault_point("cache.put.torn")
        payload = {
            "key": key,
            "result": json.loads(canonical_json(meta)),
            "has_arrays": bool(arrays),
            "label": label,
            "created": time.time(),
        }
        tmp_json = sidecar.with_suffix(".json.tmp")
        tmp_json.write_text(json.dumps(payload))
        os.replace(tmp_json, sidecar)
        if self.max_bytes:
            if self._approx_bytes is None:
                self._approx_bytes = self._measure_bytes()
            else:
                try:
                    self._approx_bytes += sidecar.stat().st_size + (
                        npz.stat().st_size if arrays else 0
                    )
                except OSError:  # pragma: no cover - concurrent removal
                    pass
            if self._approx_bytes > self.max_bytes:
                self._evict()

    # -------------------------------------------------------------- inventory

    def entries(self) -> list[CacheEntry]:
        """Every stored entry, most recently used first."""
        found: list[CacheEntry] = []
        for sidecar in self.directory.glob("*/*.json"):
            try:
                payload = json.loads(sidecar.read_text())
                stat = sidecar.stat()
            except (OSError, json.JSONDecodeError):  # pragma: no cover - races
                continue
            npz = sidecar.with_suffix(".npz")
            size = stat.st_size + (npz.stat().st_size if npz.exists() else 0)
            found.append(
                CacheEntry(
                    key=payload.get("key", sidecar.stem),
                    kind=payload.get("result", {}).get("kind", "?"),
                    size_bytes=size,
                    created=payload.get("created", stat.st_mtime),
                    last_used=stat.st_mtime,
                    label=payload.get("label"),
                )
            )
        return sorted(found, key=lambda e: e.last_used, reverse=True)

    def stats(self) -> dict:
        """Entry count, byte total and the session's hit/miss counters.

        Also sweeps orphaned ``.npz`` files (arrays whose sidecar is gone —
        the debris of a crash mid-removal) so the reported byte total and the
        eviction estimate reflect only entries that can actually be served.
        """
        orphans = self._sweep_orphans()
        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(e.size_bytes for e in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "orphans_swept": orphans,
        }

    def clear(self) -> int:
        """Remove every entry (and any orphan npz); returns how many."""
        removed = 0
        for sidecar in self.directory.glob("*/*.json"):
            self._remove(sidecar)
            removed += 1
        removed += self._sweep_orphans()
        self._approx_bytes = 0
        return removed

    def _measure_bytes(self) -> int:
        """Full scan: the store's true byte total (sidecars + arrays)."""
        total = 0
        for sidecar in self.directory.glob("*/*.json"):
            try:
                total += sidecar.stat().st_size
                npz = sidecar.with_suffix(".npz")
                if npz.exists():
                    total += npz.stat().st_size
            except OSError:  # pragma: no cover - concurrent removal
                continue
        return total

    # ---------------------------------------------------------------- eviction

    def _remove(self, sidecar: Path) -> None:
        # The npz goes first: the sidecar is the entry's existence marker, so
        # a crash between the two unlinks leaves a sidecar whose get() is a
        # recoverable torn-entry miss — never an orphan npz that no listing
        # reaches but every byte count includes.
        npz = sidecar.with_suffix(".npz")
        for path in (npz, sidecar):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def _sweep_orphans(self) -> int:
        """Unlink npz files whose sidecar is gone; returns how many."""
        removed = 0
        for npz in self.directory.glob("*/*.npz"):
            if npz.with_suffix(".json").exists():
                continue
            try:
                npz.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent removal
                continue
        if removed:
            logger.warning(
                "swept %d orphaned array file(s) from %s (crash debris)",
                removed,
                self.directory,
            )
        return removed

    def _evict(self) -> None:
        """Drop least-recently-used entries until under the size cap."""
        if self.max_bytes == 0:
            return
        sized: list[tuple[float, int, Path]] = []
        total = 0
        for sidecar in self.directory.glob("*/*.json"):
            try:
                stat = sidecar.stat()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            npz = sidecar.with_suffix(".npz")
            size = stat.st_size + (npz.stat().st_size if npz.exists() else 0)
            sized.append((stat.st_mtime, size, sidecar))
            total += size
        if total > self.max_bytes:
            evicted = 0
            for _, size, sidecar in sorted(sized):  # oldest last-use first
                self._remove(sidecar)
                total -= size
                evicted += 1
                if total <= self.max_bytes:
                    break
            logger.info(
                "evicted %d cache entr%s to get under %d bytes",
                evicted,
                "y" if evicted == 1 else "ies",
                self.max_bytes,
            )
            metrics.incr("cache.evictions", evicted)
        self._approx_bytes = total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultCache({str(self.directory)!r}, max_bytes={self.max_bytes})"
