"""Execution backends: what to *do* with a compiled program.

A :class:`Backend` consumes a :class:`~repro.compile.program.CompiledProgram`;
the three built-ins cover the ways the seed's examples and benchmarks consumed
circuits:

========================  ====================================================
``"statevector"``         evolve an initial state through the cached circuit
``"unitary"``             dense unitary of the cached circuit (memoized)
``"resource"``            analytic gate counts via :mod:`repro.core.resource`
                          — no circuit is ever built
========================  ====================================================

Register your own with ``@BACKENDS.register("name")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.circuits.statevector import Statevector
from repro.compile.registry import Registry
from repro.exceptions import CompileError

if TYPE_CHECKING:  # pragma: no cover
    from repro.compile.program import CompiledProgram
    from repro.compile.strategies import ResourceEstimate

#: The global backend registry.
BACKENDS = Registry("backend")


@runtime_checkable
class Backend(Protocol):
    """What the pipeline requires of an execution backend."""

    name: str

    def run(self, program: "CompiledProgram", **kwargs) -> Any:
        ...


@BACKENDS.register("statevector")
class StatevectorBackend:
    """Evolve a statevector through the compiled circuit.

    ``initial_state`` may be a :class:`Statevector`, a dense vector, or a
    basis-state index (default ``0``).  Block-encoding programs receive the
    state on the *system* register with ancillas prepended in ``|0…0⟩``.
    """

    name = "statevector"

    def run(
        self,
        program: "CompiledProgram",
        initial_state: "Statevector | np.ndarray | int" = 0,
        **kwargs,
    ) -> Statevector:
        if kwargs:
            raise CompileError(
                f"unknown statevector-backend arguments: {', '.join(sorted(kwargs))}"
            )
        circuit = program.circuit
        n = circuit.num_qubits
        state = self._coerce(initial_state, n, program)
        return state.evolve(circuit)

    @staticmethod
    def _coerce(initial_state, num_qubits: int, program: "CompiledProgram") -> Statevector:
        if isinstance(initial_state, Statevector):
            state = initial_state
        elif isinstance(initial_state, (int, np.integer)):
            return Statevector(int(initial_state), num_qubits)
        else:
            state = Statevector(np.asarray(initial_state))
        if state.num_qubits == num_qubits:
            return state
        # A system-register state for a program that carries ancillas: embed
        # it with the ancillas (most-significant qubits) in |0...0>.
        extra = num_qubits - state.num_qubits
        if extra > 0 and program.kind in ("block_encoding", "combination"):
            padded = np.zeros(1 << num_qubits, dtype=complex)
            padded[: 1 << state.num_qubits] = state.data
            return Statevector(padded)
        raise CompileError(
            f"initial state on {state.num_qubits} qubits does not fit a "
            f"{num_qubits}-qubit program"
        )


@BACKENDS.register("unitary")
class UnitaryBackend:
    """Return the dense unitary of the cached circuit (memoized on the program)."""

    name = "unitary"

    def run(self, program: "CompiledProgram", max_qubits: int = 14, **kwargs) -> np.ndarray:
        if kwargs:
            raise CompileError(
                f"unknown unitary-backend arguments: {', '.join(sorted(kwargs))}"
            )
        return program.unitary(max_qubits=max_qubits)


@BACKENDS.register("resource")
class ResourceBackend:
    """Analytic resource estimation — counts gates *without* building circuits.

    Delegates to the strategy's :meth:`estimate_resources`, which sums the
    closed-form models of :mod:`repro.core.resource`
    (:func:`~repro.core.resource.direct_term_resources` per gathered term for
    the direct strategy, ``2(w-1)`` CX per Pauli string for the usual one),
    scaled by the product-formula pass count.
    """

    name = "resource"

    def run(self, program: "CompiledProgram", **kwargs) -> "ResourceEstimate":
        if kwargs:
            raise CompileError(
                f"unknown resource-backend arguments: {', '.join(sorted(kwargs))}"
            )
        return program.estimate()


def get_backend(backend: "str | Backend") -> Backend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, str):
        return BACKENDS.create(backend)
    if isinstance(backend, Backend):
        return backend
    raise CompileError(f"not a backend: {backend!r}")


def available_backends() -> tuple[str, ...]:
    return BACKENDS.names()
