"""Argument-validation helpers with library-specific exceptions."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ReproError


def check_qubit_indices(qubits: Sequence[int], num_qubits: int | None = None) -> tuple[int, ...]:
    """Validate a collection of qubit indices.

    Ensures the indices are non-negative integers without duplicates and,
    when ``num_qubits`` is given, within range.  Returns the indices as a
    tuple for downstream immutability.
    """
    out = []
    seen: set[int] = set()
    for q in qubits:
        if not isinstance(q, (int, np.integer)):
            raise ReproError(f"qubit index must be an integer, got {q!r}")
        q = int(q)
        if q < 0:
            raise ReproError(f"qubit index must be non-negative, got {q}")
        if num_qubits is not None and q >= num_qubits:
            raise ReproError(f"qubit index {q} out of range for {num_qubits} qubits")
        if q in seen:
            raise ReproError(f"duplicate qubit index {q}")
        seen.add(q)
        out.append(q)
    return tuple(out)


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Ensure ``matrix`` is a square 2-D array and return it as complex ndarray."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ReproError(f"{name} must be square, got shape {matrix.shape}")
    return matrix


def check_power_of_two(value: int, name: str = "value") -> int:
    """Ensure ``value`` is a positive power of two and return its log2."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ReproError(f"{name} must be a positive power of two, got {value}")
    return int(value).bit_length() - 1


def check_probability_vector(probs: np.ndarray, atol: float = 1e-9) -> np.ndarray:
    """Ensure ``probs`` is a valid probability vector (non-negative, sums to 1)."""
    probs = np.asarray(probs, dtype=float)
    if probs.ndim != 1:
        raise ReproError(f"probability vector must be 1-D, got shape {probs.shape}")
    if np.any(probs < -atol):
        raise ReproError("probability vector has negative entries")
    total = float(probs.sum())
    if abs(total - 1.0) > 1e-6:
        raise ReproError(f"probability vector sums to {total}, expected 1")
    return np.clip(probs, 0.0, None)
