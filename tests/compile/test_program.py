"""CompiledProgram behaviour: laziness, memoization, backends, comparison."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.circuits.statevector import Statevector
from repro.circuits.unitary import circuit_unitary
from repro.compile.pipeline import compare_all, compile_many, compile_problem, run_many
from repro.compile.problem import SimulationProblem
from repro.exceptions import CompileError, OptionsError
from repro.operators.hamiltonian import Hamiltonian

QUICKSTART_TERMS = {"nsdI": 0.8, "IZZI": 0.3, "IXsd": 0.5, "mnsd": 0.2}


@pytest.fixture
def problem() -> SimulationProblem:
    return SimulationProblem.from_labels(4, QUICKSTART_TERMS, time=0.2)


class TestProblem:
    def test_from_labels_one_expression(self, problem):
        assert problem.num_qubits == 4
        assert problem.num_terms == 4

    def test_validation(self):
        ham = Hamiltonian.from_labels(2, {"ZZ": 1.0})
        with pytest.raises(CompileError):
            SimulationProblem(ham, 0.1, steps=0)
        with pytest.raises(CompileError):
            SimulationProblem(ham, 0.1, order=3)
        with pytest.raises(CompileError):
            SimulationProblem("not a hamiltonian", 0.1)

    def test_with_options_validates(self, problem):
        updated = problem.with_options(basis_change="pyramid")
        assert updated.options.basis_change == "pyramid"
        with pytest.raises(OptionsError):
            problem.with_options(basis_chang="pyramid")


class TestLazinessAndMemoization:
    def test_circuit_is_lazy_then_cached(self, problem):
        program = compile_problem(problem, "direct")
        assert not program.is_built
        first = program.circuit
        assert program.is_built
        assert program.circuit is first

    def test_unitary_is_memoized(self, problem):
        program = compile_problem(problem, "direct")
        first = program.unitary()
        assert program.unitary() is first
        np.testing.assert_allclose(first, circuit_unitary(program.circuit), atol=1e-12)

    def test_resource_backend_never_builds_a_circuit(self, problem):
        program = compile_problem(problem, "direct")
        estimate = program.run(backend="resource")
        assert estimate.fragments == 4
        assert not program.is_built


class TestRunBackends:
    def test_statevector_run_matches_exact_evolution(self, problem):
        program = compile_problem(problem, "direct", steps=8, order=2)
        state = program.run(backend="statevector")
        initial = np.zeros(16, dtype=complex)
        initial[0] = 1.0
        exact = problem.hamiltonian.evolve_exact(initial, problem.time)
        fidelity = abs(np.vdot(state.data, exact))
        assert fidelity > 1 - 1e-4

    def test_statevector_accepts_state_and_index(self, problem):
        program = compile_problem(problem, "direct")
        from_index = program.run(backend="statevector", initial_state=3)
        from_state = program.run(
            backend="statevector", initial_state=Statevector(3, 4)
        )
        np.testing.assert_allclose(from_index.data, from_state.data, atol=1e-12)

    def test_unitary_backend(self, problem):
        program = compile_problem(problem, "pauli")
        np.testing.assert_allclose(
            program.run(backend="unitary"), circuit_unitary(program.circuit), atol=1e-12
        )

    def test_unknown_backend_kwargs_rejected(self, problem):
        program = compile_problem(problem, "direct")
        with pytest.raises(CompileError, match="unknown"):
            program.run(backend="unitary", shots=100)


class TestAgreement:
    """Acceptance: direct and pauli agree to 1e-8 on the quickstart Hamiltonian."""

    def test_direct_and_pauli_agree(self, problem):
        direct = repro.compile(problem, strategy="direct").run(backend="statevector")
        pauli = repro.compile(problem, strategy="pauli").run(backend="statevector")
        np.testing.assert_allclose(direct.data, pauli.data, atol=1e-8)

    def test_direct_and_pauli_unitaries_agree(self, problem):
        sweep = compare_all(problem)
        np.testing.assert_allclose(
            sweep["direct"].unitary(), sweep["pauli"].unitary(), atol=1e-8
        )

    def test_block_encoding_matrix_is_hamiltonian(self, problem):
        program = repro.compile(problem, strategy="block_encoding")
        np.testing.assert_allclose(
            program.matrix(), problem.hamiltonian.matrix(), atol=1e-9
        )
        assert program.metadata["scale"] == pytest.approx(
            sum(abs(complex(c)) for c in QUICKSTART_TERMS.values()) * 2
            - abs(0.3)  # the Hermitian Pauli term is not doubled
        )

    def test_mpf_beats_single_formula(self):
        problem = SimulationProblem.from_labels(
            3, {"nsd": 0.7, "Zns": 0.4}, time=0.4
        )
        from scipy.linalg import expm

        from repro.utils.linalg import spectral_norm_diff

        exact = expm(-1j * problem.time * problem.hamiltonian.matrix())
        mpf = repro.compile(problem, strategy="mpf", mpf_steps=(1, 2))
        single = repro.compile(problem, strategy="direct", order=2)
        err_mpf = spectral_norm_diff(mpf.matrix(), exact)
        err_single = spectral_norm_diff(single.matrix(), exact)
        assert err_mpf < err_single


class TestCompareAll:
    def test_gap_matches_analysis_compare_strategies(self, problem):
        from repro.analysis.comparison import compare_strategies

        legacy = compare_strategies(problem.hamiltonian, problem.time, compute_error=False)
        sweep = compare_all(problem)
        legacy_gap = (
            legacy.direct_report.two_qubit_gates - legacy.pauli_report.two_qubit_gates
        )
        assert sweep.gate_count_gap() == legacy_gap
        reports = sweep.reports()
        assert reports["direct"].two_qubit_gates == legacy.direct_report.two_qubit_gates
        assert reports["pauli"].two_qubit_gates == legacy.pauli_report.two_qubit_gates

    def test_program_compare(self, problem):
        sweep = compare_all(problem)
        comparison = sweep["direct"].compare(sweep["pauli"])
        assert comparison.operator_distance < 1e-8
        assert comparison.two_qubit_gap == sweep.gate_count_gap()
        assert "direct" in comparison.summary()


class TestBatchHelpers:
    def test_compile_many_run_many(self):
        problems = [
            SimulationProblem.from_labels(2, {"ns": 0.5}, time=t) for t in (0.1, 0.2, 0.3)
        ]
        programs = compile_many(problems, "direct")
        assert len(programs) == 3
        states = run_many(programs, backend="statevector")
        norms = [s.norm() for s in states]
        np.testing.assert_allclose(norms, 1.0, atol=1e-12)

    def test_bare_hamiltonian_needs_time(self):
        ham = Hamiltonian.from_labels(2, {"ZZ": 1.0})
        with pytest.raises(CompileError, match="time"):
            compile_problem(ham, "direct")
        program = compile_problem(ham, "direct", time=0.3)
        assert program.problem.time == 0.3

    def test_time_override_on_existing_problem(self, problem):
        program = compile_problem(problem, "direct", time=0.7)
        assert program.problem.time == 0.7
        assert problem.time == 0.2  # original untouched


class TestGuards:
    def test_block_encoding_compiles_lazily(self, problem):
        program = compile_problem(problem, "block_encoding")
        assert not program.is_built
        program.run(backend="resource")
        assert not program.is_built
        np.testing.assert_allclose(
            program.matrix(), problem.hamiltonian.matrix(), atol=1e-9
        )
        assert program.metadata["scale"] > 0

    def test_cached_unitary_still_respects_max_qubits(self, problem):
        from repro.exceptions import SimulationError

        program = compile_problem(problem, "direct")
        program.unitary()
        with pytest.raises(SimulationError, match="limit 2"):
            program.unitary(max_qubits=2)

    def test_unitary_limit_flows_from_options(self, problem):
        from repro.exceptions import SimulationError

        program = compile_problem(problem, "direct", unitary_max_qubits=2)
        with pytest.raises(SimulationError, match="limit 2"):
            program.unitary()
        # An explicit argument still overrides the option.
        assert program.unitary(max_qubits=4).shape == (16, 16)


class TestExecutionFastPath:
    def test_execution_circuit_is_the_logical_circuit_at_level_0(self, problem):
        program = compile_problem(problem, "direct")
        assert program.execution_circuit is program.circuit

    def test_fusion_is_cached_and_does_not_change_reports(self, problem):
        plain = compile_problem(problem, "direct")
        fused = compile_problem(problem, "direct", optimize_level=1)
        assert fused.execution_circuit is fused.execution_circuit
        assert fused.execution_circuit.size() < plain.circuit.size()
        # Resource reports keep reading the logical circuit.
        assert (
            fused.resources().two_qubit_gates == plain.resources().two_qubit_gates
        )
        np.testing.assert_allclose(fused.unitary(), plain.unitary(), atol=1e-12)

    def test_sparse_operators_cached(self, problem):
        program = compile_problem(problem, "direct")
        ops = program.sparse_operators()
        assert program.sparse_operators() is ops
        assert len(ops) == program.execution_circuit.size()

    def test_sparse_backend_matches_statevector(self, problem):
        program = compile_problem(problem, "direct", steps=2)
        dense = program.run(backend="statevector")
        sparse = program.run(backend="sparse")
        np.testing.assert_allclose(dense.data, sparse.data, atol=1e-12)


class TestCallableModule:
    def test_repro_compile_is_callable_and_a_package(self, problem):
        import repro.compile as rc

        program = repro.compile(problem, strategy="direct")
        assert isinstance(program, rc.CompiledProgram)
        assert rc.compile_problem is not None
        assert repro.compile.available_strategies() == rc.available_strategies()

    def test_unknown_option_through_facade(self, problem):
        with pytest.raises(OptionsError):
            repro.compile(problem, strategy="direct", basis_chnge="pyramid")
