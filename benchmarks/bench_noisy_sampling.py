"""Noisy sampling + the measurement advantage at a fixed shot budget.

Two claims are measured on the 2-site Fermi–Hubbard chemistry Hamiltonian
(4 qubits, genuine two-body transition fragments):

1. the new execution modes run end-to-end — ``sampling`` (noiseless and with
   a depolarizing + readout noise model) and ``density_matrix`` (whose ideal
   run matches the statevector backend to 1e-10);
2. at a *fixed total shot budget* the Annex-C SCB settings (one per gathered
   fragment) give a lower-variance energy estimate than per-Pauli-string
   settings — the paper's "fewer observables" claim turned into an accuracy
   statement under shot noise.

The measured numbers are written to ``BENCH_sampling.json`` next to this file
so the advantage can be tracked across commits.

The study also runs through the :mod:`repro.runtime` layer: the multi-seed
sampling repeats execute as a seeded ``SweepSpec(repeats=...)`` through the
session's executor (worker-count-independent streams), and the whole
measurement study is content-addressed in a session cache — the recorded
``study_cached_s`` is what any re-run with unchanged inputs costs.  The
dedicated serial-vs-4-worker wall-clock comparison lives in
``bench_runtime_sweep.py`` → ``BENCH_runtime.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from benchmarks.conftest import print_table
from repro.applications.chemistry import (
    chemistry_measurement_study,
    fermi_hubbard_chain,
    jordan_wigner_scb,
    measurement_reference_state,
)
from repro.noise import NoiseModel
from repro.runtime import Session, SweepSpec

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_sampling.json"

TOTAL_SHOTS = 16_384
REPEATS = 12


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_estimator_scb_beats_pauli_at_fixed_shots(benchmark):
    hamiltonian = jordan_wigner_scb(fermi_hubbard_chain(2, 1.0, 4.0))
    assert hamiltonian.num_qubits >= 4
    state = measurement_reference_state(hamiltonian)

    study = benchmark(
        lambda: chemistry_measurement_study(
            total_shots=TOTAL_SHOTS, repeats=REPEATS, rng=0, state=state
        )
    )

    print_table(
        "Annex C under shot noise — energy estimation at a fixed budget",
        ["scheme", "settings", "predicted σ", "empirical rmse"],
        [
            ["scb (1/fragment)", study.scb_settings,
             f"{study.scb_std_error:.5f}", f"{study.scb_rmse:.5f}"],
            ["pauli (1/string)", study.pauli_settings,
             f"{study.pauli_std_error:.5f}", f"{study.pauli_rmse:.5f}"],
        ],
    )
    print(f"\n{study.summary()}")

    # The acceptance claim: fewer settings → lower variance at fixed shots.
    assert study.scb_settings < study.pauli_settings
    assert study.scb_std_error < study.pauli_std_error
    assert study.variance_ratio > 1.0

    # Timings of the new execution modes on the same workload; programs come
    # from a session memo, so every closure below shares one build each.
    import tempfile
    from pathlib import Path

    session = Session(cache=Path(tempfile.mkdtemp(prefix="bench-sampling-")) / "c")
    problem = repro.SimulationProblem(hamiltonian, 0.15, steps=2, order=2)
    noisy_problem = problem.with_options(
        noise_model=NoiseModel.uniform_depolarizing(0.002, readout=0.01)
    )
    clean = session.compile(problem, "direct")
    noisy = session.compile(noisy_problem, "direct")
    psi = clean.run(backend="statevector")
    rho_ideal = clean.run(backend="density_matrix")
    assert rho_ideal.fidelity(psi) > 1 - 1e-10  # ideal ρ matches |ψ⟩⟨ψ|

    times = {
        "statevector_s": _best_of(lambda: clean.run(backend="statevector")),
        "sampling_noiseless_s": _best_of(
            lambda: clean.run(backend="sampling", shots=TOTAL_SHOTS, rng=1)
        ),
        "density_matrix_ideal_s": _best_of(lambda: clean.run(backend="density_matrix")),
        "density_matrix_noisy_s": _best_of(lambda: noisy.run(backend="density_matrix")),
        "sampling_noisy_s": _best_of(
            lambda: noisy.run(backend="sampling", shots=TOTAL_SHOTS, rng=1)
        ),
    }
    rho_noisy = noisy.run(backend="density_matrix")

    # The same repeats, as a declarative seeded sweep through the runtime
    # executor: one spawned stream per replica, identical under any worker
    # count, every replica content-addressed in the session cache.
    sweep_spec = SweepSpec(
        problem=noisy_problem,
        backend="sampling",
        run_kwargs={"shots": TOTAL_SHOTS},
        repeats=REPEATS,
        seed=1,
        name="noisy-sampling-repeats",
    )
    start = time.perf_counter()
    sweep_cold = session.sweep(sweep_spec)
    sweep_cold_s = time.perf_counter() - start
    assert sweep_cold.ok and len(sweep_cold) == REPEATS
    start = time.perf_counter()
    sweep_warm = session.sweep(sweep_spec)
    sweep_warm_s = time.perf_counter() - start
    assert sweep_warm.num_cached == REPEATS
    assert [r.value.counts for r in sweep_warm] == [
        r.value.counts for r in sweep_cold
    ]

    # The full measurement study, content-addressed: a repeated Annex-C
    # re-run with unchanged inputs is one cache read.
    start = time.perf_counter()
    cached_study = chemistry_measurement_study(
        total_shots=TOTAL_SHOTS, repeats=REPEATS, rng=0, state=state,
        session=session,
    )
    study_cold_s = time.perf_counter() - start
    start = time.perf_counter()
    replay = chemistry_measurement_study(
        total_shots=TOTAL_SHOTS, repeats=REPEATS, rng=0, state=state,
        session=session,
    )
    study_cached_s = time.perf_counter() - start
    assert replay == cached_study

    payload = {
        "machine_cores": os.cpu_count() or 1,
        "workload": {
            "hamiltonian": "fermi_hubbard_chain(2, t=1.0, U=4.0) under Jordan-Wigner",
            "num_qubits": hamiltonian.num_qubits,
            "total_shots": TOTAL_SHOTS,
            "repeats": REPEATS,
            "allocation": "neyman",
            "state": "HF determinant after order-2 Trotter (t=0.15, 2 steps)",
        },
        "exact_value": round(study.exact_value, 8),
        "scb_settings": study.scb_settings,
        "pauli_settings": study.pauli_settings,
        "scb_std_error": round(study.scb_std_error, 6),
        "pauli_std_error": round(study.pauli_std_error, 6),
        "scb_rmse": round(study.scb_rmse, 6),
        "pauli_rmse": round(study.pauli_rmse, 6),
        "variance_ratio": round(study.variance_ratio, 3),
        "empirical_variance_ratio": round(study.empirical_variance_ratio, 3),
        "noise_model": "uniform_depolarizing(p1=0.002, p2=0.02, readout=0.01)",
        "noisy_state_purity": round(rho_noisy.purity(), 6),
        "ideal_density_fidelity": round(rho_ideal.fidelity(psi), 12),
        **{k: round(v, 6) for k, v in times.items()},
        "runtime": {
            "sampling_sweep_cold_s": round(sweep_cold_s, 6),
            "sampling_sweep_cached_s": round(sweep_warm_s, 6),
            "study_cold_s": round(study_cold_s, 6),
            "study_cached_s": round(study_cached_s, 6),
            "study_cache_speedup": round(study_cold_s / max(study_cached_s, 1e-9), 1),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULT_PATH.name}: variance ratio "
          f"{payload['variance_ratio']}x with {study.scb_settings} vs "
          f"{study.pauli_settings} settings")
