"""Deprecation shims for the pre-pipeline entry points.

The loose top-level entry points of the seed (``repro.evolve_term``,
``repro.pauli_hamiltonian_simulation``, …) keep working but now warn and point
at the :mod:`repro.compile` pipeline.  The underlying implementations in
:mod:`repro.core` are *not* deprecated — they are the layer the strategies
call — only the top-level re-exports that applications used to wire by hand.
"""

from __future__ import annotations

import functools
import warnings


def deprecated_alias(func, old_name: str, replacement: str):
    """Wrap ``func`` so calling it via the old top-level name warns once per site."""

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.{old_name} is deprecated; use {replacement} instead "
            "(the old call keeps working and produces identical circuits)",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    wrapper.__deprecated__ = replacement
    return wrapper
