"""Live fleet observability end to end — in one process.

1. start a ``Daemon`` with two local workers, a metrics time-series sampler
   and a Prometheus scrape endpoint on an ephemeral port, with span tracing
   enabled;
2. run the paper's 16-point sampling sweep through it;
3. scrape ``/metrics`` exactly as Prometheus would and parse the exposition;
4. read the raw metrics ring buffer through ``ServiceClient.series()``;
5. render one frame of the ``repro.service top`` dashboard;
6. export the trace as Chrome trace-event JSON (``chrome://tracing`` /
   https://ui.perfetto.dev) and print the critical path from ``report``.

Against a long-lived daemon you would run instead::

    python -m repro.service serve --workers 2 --metrics-port 9464
    python -m repro.service top                       # another terminal
    curl localhost:9464/metrics                       # or point Prometheus at it
    python -m repro.telemetry export traces --format chrome --out trace.json

Run with ``python examples/live_monitoring.py``.
"""

import json
import tempfile
import time
import urllib.request
from pathlib import Path

import repro
from repro import telemetry
from repro.runtime import ResultCache, SweepSpec
from repro.service import Daemon, ServiceClient
from repro.service.cli import main as service_cli
from repro.telemetry.exporters import export_chrome_trace, parse_prometheus
from repro.telemetry.report import critical_path, load_trace_dir


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-monitoring-"))
    trace_dir = workdir / "traces"
    telemetry.configure(enabled=True, directory=trace_dir)

    # ------------------------------------------------------------------ 1.
    daemon = Daemon(
        workdir / "daemon.sock",
        service_dir=workdir / "service",
        cache=ResultCache(workdir / "cache"),  # hermetic: nothing in ~/.cache
        local_workers=2,
        chunk_size=2,
        sample_interval=0.2,  # fast sampling so a demo sweep fills the buffer
        metrics_port=0,  # ephemeral; a deployment would pin e.g. 9464
    )
    daemon.start()
    print(f"daemon on {daemon.socket_path}")
    print(f"scrape endpoint at {daemon.metrics_server.url}")

    # ------------------------------------------------------------------ 2.
    problem = repro.SimulationProblem.from_labels(
        4, {"nsdI": 0.8, "IZZI": 0.3}, time=0.3, name="monitoring-demo"
    )
    spec = SweepSpec(
        problem=problem,
        strategies=("direct", "pauli"),
        steps=(1, 2, 4, 8),
        backend="sampling",
        run_kwargs={"shots": 512},
        seed=7,
        repeats=2,  # 2 × 4 × 2 = 16 points
    )
    client = ServiceClient(daemon.socket_path)
    ack = client.submit(spec)
    status = client.wait(ack["job_id"])
    print(f"sweep finished: {status['done']}/{status['total']} points done")
    time.sleep(0.3)  # let the sampler take a post-sweep tick

    # ------------------------------------------------------------------ 3.
    with urllib.request.urlopen(daemon.metrics_server.url, timeout=10) as resp:
        exposition = resp.read().decode("utf-8")
    values = parse_prometheus(exposition)  # strict name/label/value grammar
    print(
        f"/metrics: {len(values)} samples — "
        f"{values['repro_service_points_executed']:.0f} points executed, "
        f"cache {values['repro_cache_hits_total']:.0f} hits / "
        f"{values['repro_cache_misses_total']:.0f} misses"
    )

    # ------------------------------------------------------------------ 4.
    series = client.series()
    rates = [s["derived"]["points_per_second"] for s in series["samples"]]
    print(
        f"series: {len(series['samples'])} samples @ {series['interval']:g}s, "
        f"peak throughput {max(rates):.1f} points/s"
    )

    # ------------------------------------------------------------------ 5.
    print("\none frame of `repro.service top`:\n")
    service_cli(["top", "--count", "1", "--socket", str(daemon.socket_path)])

    # ------------------------------------------------------------------ 6.
    out = workdir / "trace.json"
    export_chrome_trace(trace_dir, out=out)
    events = json.loads(out.read_text())["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    print(f"\nwrote {out} ({len(spans)} spans) — load it at ui.perfetto.dev")
    path = critical_path(load_trace_dir(trace_dir))
    chain = " -> ".join(step["name"] for step in path["steps"])
    print(f"critical path ({path['wall']:.3f}s): {chain}")

    daemon.shutdown()
    telemetry.reset()
    print("daemon shut down cleanly")


if __name__ == "__main__":
    main()
