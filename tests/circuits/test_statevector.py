"""Unit tests for the statevector simulator."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, Statevector, apply_matrix, simulate
from repro.circuits.standard_gates import CX, H, X
from repro.exceptions import SimulationError
from repro.utils.linalg import random_statevector


class TestConstruction:
    def test_from_int(self):
        state = Statevector(3, 2)
        np.testing.assert_allclose(state.data, [0, 0, 0, 1])

    def test_from_int_requires_width(self):
        with pytest.raises(SimulationError):
            Statevector(3)

    def test_from_bitstring(self):
        state = Statevector.from_bitstring("10")
        np.testing.assert_allclose(state.data, [0, 0, 1, 0])

    def test_invalid_length(self):
        with pytest.raises(SimulationError):
            Statevector(np.ones(3))

    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            Statevector(np.ones(4), num_qubits=3)

    def test_normalize(self):
        state = Statevector(np.array([3.0, 4.0, 0, 0]))
        assert state.normalize().norm() == pytest.approx(1.0)

    def test_normalize_zero_vector(self):
        with pytest.raises(SimulationError):
            Statevector(np.zeros(2)).normalize()


class TestApplyMatrix:
    def test_single_qubit_on_msb(self):
        tensor = np.zeros((2, 2), dtype=complex)
        tensor[0, 0] = 1.0
        out = apply_matrix(tensor, X, [0])
        assert out[1, 0] == pytest.approx(1.0)

    def test_two_qubit_ordering(self):
        # CX with control=qubit1 (LSB), target=qubit0 (MSB) on |01> -> |11>
        state = Statevector(0b01, 2)
        out = state.evolve_matrix(CX, [1, 0])
        np.testing.assert_allclose(np.abs(out.data), [0, 0, 0, 1])

    def test_shape_mismatch(self):
        tensor = np.zeros((2, 2), dtype=complex)
        with pytest.raises(SimulationError):
            apply_matrix(tensor, np.eye(4), [0])


class TestEvolution:
    def test_bell_state(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        state = simulate(qc)
        np.testing.assert_allclose(state.data, [1 / np.sqrt(2), 0, 0, 1 / np.sqrt(2)])

    def test_width_mismatch(self):
        qc = QuantumCircuit(3)
        with pytest.raises(SimulationError):
            Statevector.zero_state(2).evolve(qc)

    def test_global_phase_applied(self):
        qc = QuantumCircuit(1)
        qc.global_phase = np.pi / 2
        state = simulate(qc)
        assert state.data[0] == pytest.approx(1j)

    def test_norm_preserved(self, rng):
        from repro.circuits import random_circuit

        qc = random_circuit(4, 40, rng=rng)
        psi = Statevector(random_statevector(4, rng))
        assert psi.evolve(qc).norm() == pytest.approx(1.0)

    def test_evolve_matches_matrix_product(self, rng):
        from repro.circuits import circuit_unitary, random_circuit

        qc = random_circuit(3, 25, rng=rng)
        psi = random_statevector(3, rng)
        direct = Statevector(psi).evolve(qc).data
        via_matrix = circuit_unitary(qc) @ psi
        np.testing.assert_allclose(direct, via_matrix, atol=1e-10)


class TestMeasurementHelpers:
    def test_probabilities_sum(self, rng):
        state = Statevector(random_statevector(3, rng))
        assert state.probabilities().sum() == pytest.approx(1.0)

    def test_expectation_value_of_projector(self):
        state = Statevector.from_bitstring("01")
        proj = np.diag([0, 1, 0, 0]).astype(complex)
        assert state.expectation_value(proj) == pytest.approx(1.0)

    def test_expectation_shape_mismatch(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(1).expectation_value(np.eye(4))

    def test_sample_counts_deterministic_state(self):
        counts = Statevector.from_bitstring("101").sample_counts(50, np.random.default_rng(0))
        assert counts == {"101": 50}

    def test_sample_counts_invalid_shots(self):
        with pytest.raises(SimulationError):
            Statevector.zero_state(1).sample_counts(0)

    def test_inner_and_fidelity(self):
        a = Statevector.from_bitstring("0")
        b = Statevector(np.array([1, 1]) / np.sqrt(2))
        assert abs(a.inner(b)) == pytest.approx(1 / np.sqrt(2))
        assert a.fidelity(b) == pytest.approx(0.5)
