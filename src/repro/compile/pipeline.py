"""Facade functions: problem in, compiled program(s) out.

This is the seam every future scaling PR (result caching, multiprocessing
fan-out, new backends) plugs into: a single :func:`compile_problem` call
replaces the seed's dozen hand-wired builder invocations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.compile.backends import get_backend
from repro.compile.options import CompileOptions
from repro.compile.problem import SimulationProblem
from repro.compile.program import CompiledProgram
from repro.compile.strategies import get_strategy
from repro.exceptions import CompileError
from repro.operators.hamiltonian import Hamiltonian


def _coerce_problem(problem, time=None, **problem_kwargs) -> SimulationProblem:
    if isinstance(problem, SimulationProblem):
        return problem
    if isinstance(problem, Hamiltonian):
        if time is None:
            raise CompileError("a bare Hamiltonian needs an explicit time=")
        return SimulationProblem(problem, time, **problem_kwargs)
    raise CompileError(
        f"cannot compile a {type(problem).__name__}; "
        "pass a SimulationProblem (or a Hamiltonian with time=)"
    )


def _with_overrides(
    problem: SimulationProblem,
    *,
    time: float | None = None,
    steps: int | None = None,
    order: int | None = None,
    opts: dict | None = None,
) -> SimulationProblem:
    """The problem with validated prescription/option overrides applied.

    One override path shared by :func:`compile_problem`, :func:`compare_all`
    and :func:`compile_many` — with or without a session — so ``time=``,
    ``steps=`` and ``order=`` mean the same thing everywhere.
    """
    from dataclasses import replace

    updates: dict = {}
    if time is not None and problem.time != time:
        updates["time"] = time
    if steps is not None:
        updates["steps"] = steps
    if order is not None:
        updates["order"] = order
    if opts:
        updates["options"] = CompileOptions.from_any(problem.options, **opts)
    return replace(problem, **updates) if updates else problem


def compile_problem(
    problem: SimulationProblem | Hamiltonian,
    strategy: str = "direct",
    *,
    time: float | None = None,
    steps: int | None = None,
    order: int | None = None,
    **opts,
) -> CompiledProgram:
    """Compile a problem with the given strategy into a :class:`CompiledProgram`.

    ``**opts`` are validated option overrides (see
    :class:`~repro.compile.options.CompileOptions`); unknown names raise
    :class:`~repro.exceptions.OptionsError`.  ``time``/``steps``/``order``
    override the problem's prescription without mutating it.
    """
    problem = _with_overrides(
        _coerce_problem(problem, time=time),
        time=time, steps=steps, order=order, opts=opts,
    )
    return CompiledProgram(problem=problem, strategy=get_strategy(strategy))


@dataclass
class StrategySweep:
    """Every requested strategy compiled against the same problem."""

    problem: SimulationProblem
    programs: dict[str, CompiledProgram]

    def __getitem__(self, name: str) -> CompiledProgram:
        return self.programs[name]

    def reports(self, *, transpiled: bool = True) -> dict:
        return {
            name: program.resources(transpiled=transpiled)
            for name, program in self.programs.items()
        }

    def estimates(self) -> dict:
        return {name: p.estimate() for name, p in self.programs.items()}

    def gate_count_gap(self, left: str = "direct", right: str = "pauli") -> int:
        """Transpiled two-qubit-gate gap between two strategies (left − right)."""
        reports = self.reports()
        return reports[left].two_qubit_gates - reports[right].two_qubit_gates

    def summary(self) -> str:
        from repro.analysis.gate_counts import format_comparison_table

        return format_comparison_table(self.reports())


def compare_all(
    problem: SimulationProblem | Hamiltonian,
    *,
    strategies: Sequence[str] = ("direct", "pauli"),
    time: float | None = None,
    session=None,
    **opts,
) -> StrategySweep:
    """Compile the same problem under several strategies for side-by-side study.

    The default pair reproduces the paper's Fig. 2 / Table 3 comparison; pass
    ``strategies=repro.compile.available_strategies()`` for the full sweep.

    With a :class:`~repro.runtime.session.Session`, compilation goes through
    the session's content-keyed program memo: repeated comparisons of the
    same problem share one :class:`CompiledProgram` per strategy — and with
    it every cached build product (circuit, fused execution circuit, mask
    plan).
    """
    problem = _with_overrides(
        _coerce_problem(problem, time=time),
        time=time,
        steps=opts.pop("steps", None),
        order=opts.pop("order", None),
        opts=opts,
    )
    programs = {
        name: (
            session.compile(problem, name)
            if session is not None
            else compile_problem(problem, name)
        )
        for name in strategies
    }
    return StrategySweep(problem=problem, programs=programs)


def compile_many(
    problems: Iterable[SimulationProblem | Hamiltonian],
    strategy: str = "direct",
    *,
    time: float | None = None,
    session=None,
    **opts,
) -> list[CompiledProgram]:
    """Batch compile — with a session, through its content-keyed program memo."""
    steps = opts.pop("steps", None)
    order = opts.pop("order", None)
    overridden = (
        _with_overrides(
            _coerce_problem(problem, time=time),
            time=time, steps=steps, order=order, opts=opts,
        )
        for problem in problems
    )
    if session is not None:
        return [session.compile(problem, strategy) for problem in overridden]
    return [compile_problem(problem, strategy) for problem in overridden]


def run_many(
    programs: Iterable[CompiledProgram],
    backend: str = "statevector",
    *,
    initial_states: Sequence | None = None,
    **kwargs,
) -> list:
    """Run every program on the same backend, preserving order.

    The backend is resolved once and every build product is cached *on the
    program* — circuit, fused execution circuit, sparse operators — so a
    parameter sweep amortizes compilation and fusion: a program appearing
    several times in ``programs`` (e.g. swept over ``initial_states``) is
    built and fused exactly once, and repeated ``run_many`` calls over the
    same programs skip straight to execution.

    ``initial_states`` accepts one initial state per program (any iterable,
    generators included), or a *single* shared state — a
    :class:`~repro.circuits.statevector.Statevector`, a dense vector, or a
    basis index — broadcast to every program.  Sweep a single program over
    many states with ``run_many([program] * len(states),
    initial_states=states)``.
    """
    import numpy as np

    from repro.circuits.statevector import Statevector

    resolved = get_backend(backend)
    programs = list(programs)
    if initial_states is None:
        return [resolved.run(program, **kwargs) for program in programs]
    if isinstance(initial_states, (Statevector, int, np.integer)) or (
        isinstance(initial_states, np.ndarray) and initial_states.ndim == 1
    ):
        # One shared state for every program (a basis index, a Statevector,
        # or a dense vector — note a *list* of states is never a vector).
        states = [initial_states] * len(programs)
    else:
        states = list(initial_states)
        if len(states) != len(programs):
            raise CompileError(
                f"run_many received {len(states)} initial states for "
                f"{len(programs)} programs; pass one state per program, or a "
                f"single shared Statevector/vector/basis-index"
            )
    return [
        resolved.run(program, initial_state=state, **kwargs)
        for program, state in zip(programs, states)
    ]
