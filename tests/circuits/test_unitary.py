"""Unit tests for the dense-unitary builder and equivalence checks."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, circuit_unitary, circuits_equivalent, random_circuit
from repro.exceptions import SimulationError
from repro.utils.linalg import is_unitary


class TestCircuitUnitary:
    def test_identity_circuit(self):
        qc = QuantumCircuit(2)
        np.testing.assert_allclose(circuit_unitary(qc), np.eye(4))

    def test_random_circuit_is_unitary(self, rng):
        qc = random_circuit(4, 30, rng=rng)
        assert is_unitary(circuit_unitary(qc))

    def test_respects_global_phase(self):
        qc = QuantumCircuit(1)
        qc.global_phase = 0.3
        np.testing.assert_allclose(circuit_unitary(qc), np.exp(1j * 0.3) * np.eye(2))

    def test_size_guard(self):
        qc = QuantumCircuit(15)
        with pytest.raises(SimulationError):
            circuit_unitary(qc)

    def test_gate_order(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        qc.z(0)
        # operator = Z @ X
        expected = np.array([[0, 1], [-1, 0]], dtype=complex)
        np.testing.assert_allclose(circuit_unitary(qc), expected)


class TestDtypeControl:
    """The contraction runs in (and returns) exactly the requested dtype."""

    def test_default_is_complex128(self, rng):
        qc = random_circuit(3, 15, rng=rng)
        assert circuit_unitary(qc).dtype == np.complex128

    def test_complex64_stays_complex64(self, rng):
        # Before the fix the first complex128 gate matrix silently upcast the
        # whole accumulation back to complex128.
        qc = random_circuit(3, 15, rng=rng)
        qc.global_phase = 0.7  # the phase multiply must not upcast either
        low = circuit_unitary(qc, dtype=np.complex64)
        assert low.dtype == np.complex64
        np.testing.assert_allclose(low, circuit_unitary(qc), atol=1e-5)

    def test_non_complex_dtype_rejected(self):
        with pytest.raises(SimulationError, match="complex dtype"):
            circuit_unitary(QuantumCircuit(1), dtype=np.float64)


class TestEquivalence:
    def test_equivalent_true(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.h(1)
        b.cz(0, 1)
        b.h(1)
        assert circuits_equivalent(a, b)

    def test_equivalent_false(self):
        a = QuantumCircuit(1)
        a.x(0)
        b = QuantumCircuit(1)
        b.z(0)
        assert not circuits_equivalent(a, b)

    def test_width_mismatch(self):
        assert not circuits_equivalent(QuantumCircuit(1), QuantumCircuit(2))

    def test_up_to_global_phase(self):
        a = QuantumCircuit(1)
        a.z(0)
        b = QuantumCircuit(1)
        b.rz(np.pi, 0)  # differs from Z by a global phase
        assert not circuits_equivalent(a, b)
        assert circuits_equivalent(a, b, up_to_global_phase=True)
