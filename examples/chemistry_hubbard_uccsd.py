"""Chemistry example: Fermi–Hubbard dynamics and a UCCSD/VQE ground state (Section V-B).

1. Jordan–Wigner maps the Fermi–Hubbard chain into Single Component Basis terms
   (each gathered term is one electronic transition or one density product);
2. individual transitions are simulated exactly (no Trotter error);
3. the full evolution compares the fermionic and Pauli partitionings;
4. a UCCSD ansatz — literally a series of exact transitions — is optimised
   variationally on a small toy molecule.

Run with ``python examples/chemistry_hubbard_uccsd.py``.
"""

import numpy as np

from repro.applications.chemistry import (
    compare_partitionings,
    diatomic_toy_hamiltonian,
    fermi_hubbard_chain,
    jordan_wigner_scb,
    one_body_fragment,
    reference_energy,
    transition_exactness_error,
    two_body_fragment,
    uccsd_parameter_count,
    vqe_optimize,
)


def main() -> None:
    # ------------------------------------------------------------- Hubbard
    operator = fermi_hubbard_chain(num_sites=2, tunneling=1.0, interaction=4.0)
    hamiltonian = jordan_wigner_scb(operator)
    print(f"Fermi–Hubbard chain (2 sites): {hamiltonian.num_qubits} qubits, "
          f"{hamiltonian.num_terms} gathered SCB terms, "
          f"{hamiltonian.to_pauli().num_terms} Pauli strings")
    energy = hamiltonian.ground_state()[0][0]
    print(f"  exact ground-state energy: {energy:.6f}")

    # Individual transitions are exact (Section V-B.1).
    one_body = one_body_fragment(0, 3, 0.7, 5)
    two_body = two_body_fragment(0, 1, 2, 3, 0.5, 4)
    print("\nIndividual electronic transitions (direct circuits):")
    print(f"  one-body a†_0 a_3 + h.c. : error {transition_exactness_error(one_body, 0.4):.1e}")
    print(f"  two-body a†a†aa + h.c.   : error {transition_exactness_error(two_body, 0.4):.1e}")

    # Full-Hamiltonian Trotter error: fermionic vs Pauli partitioning.
    print("\nFull-evolution Trotter error (t = 0.5):")
    for steps in (1, 2, 4):
        comparison = compare_partitionings(operator, 0.5, steps=steps)
        print(f"  {comparison.summary()}")

    # --------------------------------------------------------------- UCCSD
    toy = jordan_wigner_scb(diatomic_toy_hamiltonian(), 4)
    exact = toy.ground_state()[0][0]
    hartree_fock = reference_energy(toy, num_electrons=2)
    print(f"\nToy diatomic molecule (4 spin-orbitals, 2 electrons, "
          f"{uccsd_parameter_count(4, 2)} UCCSD parameters):")
    print(f"  Hartree–Fock energy : {hartree_fock:.6f}")
    vqe_energy, parameters = vqe_optimize(toy, num_electrons=2, maxiter=120, rng=0)
    print(f"  UCCSD/VQE energy    : {vqe_energy:.6f}")
    print(f"  exact (FCI) energy  : {exact:.6f}")
    print(f"  correlation energy recovered: "
          f"{100.0 * (hartree_fock - vqe_energy) / (hartree_fock - exact):.1f}%")


if __name__ == "__main__":
    main()
