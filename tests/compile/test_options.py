"""Unified options surface: validation, coercion, legacy projections."""

from __future__ import annotations

import pytest

from repro.compile.options import CompileOptions
from repro.core.direct_evolution import EvolutionOptions
from repro.core.pauli_evolution import PauliEvolutionOptions
from repro.exceptions import OptionsError


class TestValidation:
    def test_defaults_are_valid(self):
        options = CompileOptions()
        assert options.basis_change == "linear"
        assert options.complex_mode == "exact"

    def test_unknown_option_name_raises(self):
        with pytest.raises(OptionsError, match="unknown option name"):
            CompileOptions.from_any(None, basis_chnge="linear")

    def test_error_message_lists_valid_names(self):
        with pytest.raises(OptionsError, match="basis_change"):
            CompileOptions.from_any(None, nope=1)

    @pytest.mark.parametrize(
        "name,value",
        [
            ("basis_change", "diagonal"),
            ("parity_mode", "spiral"),
            ("complex_mode", "magic"),
            ("mcx_mode", "telepathy"),
        ],
    )
    def test_invalid_values_raise(self, name, value):
        with pytest.raises(OptionsError, match="invalid value"):
            CompileOptions(**{name: value})

    def test_negative_pivot_raises(self):
        with pytest.raises(OptionsError, match="pivot"):
            CompileOptions(pivot=-1)

    def test_bad_mpf_steps_raise(self):
        with pytest.raises(OptionsError, match="mpf_steps"):
            CompileOptions(mpf_steps=(1, 1))
        with pytest.raises(OptionsError, match="mpf_steps"):
            CompileOptions(mpf_steps=(0, 2))

    def test_optimize_level_values(self):
        assert CompileOptions(optimize_level=1).optimize_level == 1
        with pytest.raises(OptionsError, match="optimize_level"):
            CompileOptions(optimize_level=2)
        with pytest.raises(OptionsError, match="integer"):
            CompileOptions(optimize_level="fast")
        # Non-integral floats must not silently truncate (0.9 is not "off").
        with pytest.raises(OptionsError, match="integer"):
            CompileOptions(optimize_level=0.9)
        with pytest.raises(OptionsError, match="integer"):
            CompileOptions(fusion_max_qubits=4.9)

    @pytest.mark.parametrize("name", ["fusion_max_qubits", "unitary_max_qubits"])
    def test_qubit_counts_must_be_positive(self, name):
        assert getattr(CompileOptions(**{name: 3}), name) == 3
        with pytest.raises(OptionsError, match=name):
            CompileOptions(**{name: 0})


class TestCoercion:
    def test_from_none(self):
        assert CompileOptions.from_any(None) == CompileOptions()

    def test_from_dict_and_overrides(self):
        options = CompileOptions.from_any({"basis_change": "pyramid"}, parity_mode="pyramid")
        assert options.basis_change == "pyramid"
        assert options.parity_mode == "pyramid"

    def test_from_legacy_evolution_options(self):
        legacy = EvolutionOptions(basis_change="pyramid", complex_mode="trotter_split")
        options = CompileOptions.from_any(legacy)
        assert options.basis_change == "pyramid"
        assert options.complex_mode == "trotter_split"

    def test_from_legacy_pauli_options(self):
        options = CompileOptions.from_any(PauliEvolutionOptions(parity_mode="pyramid"))
        assert options.parity_mode == "pyramid"

    def test_from_garbage_raises(self):
        with pytest.raises(OptionsError):
            CompileOptions.from_any(42)

    def test_round_trip_projections(self):
        options = CompileOptions(basis_change="pyramid", parity_mode="pyramid", pivot=2)
        evo = options.evolution_options()
        assert evo == EvolutionOptions(
            basis_change="pyramid", parity_mode="pyramid", complex_mode="exact", pivot=2
        )
        assert options.pauli_options() == PauliEvolutionOptions(parity_mode="pyramid")

    def test_single_surface_is_reexported_through_compile(self):
        import repro.compile as rc

        assert rc.EvolutionOptions is EvolutionOptions
        assert rc.PauliEvolutionOptions is PauliEvolutionOptions
        assert rc.CompileOptions is CompileOptions
