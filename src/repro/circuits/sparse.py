"""Sparse (CSR) gate application for statevector runs past the dense limit.

The dense kernel of :mod:`repro.circuits.statevector` touches every amplitude
with a ``2^k``-wide tensordot per gate.  Most gates of the circuits this
library builds are far sparser than a generic ``2^k × 2^k`` matrix: ``cx``,
``cz``, ``cp``, ``rz`` and every multi-controlled gate have at most one
nonzero per row, so embedding them as a scipy CSR operator on the *full*
``2^n``-dimensional space costs ``O(2^n)`` memory and one ``O(nnz)`` matvec —
independent of how many qubits the gate spans.  That is what lets the
``"sparse"`` execution backend push statevector simulation past 20 qubits
where the per-gate dense embedding used for unitary extraction stops at ~14.

The embedding is built fully vectorized: for a gate ``g`` on qubits ``Q`` the
full-space operator has entries ``A[r|i, r|j] = g[i, j]`` where ``i``/``j``
run over the gate's local indices scattered into the bit positions of ``Q``
and ``r`` over all assignments of the remaining ``n-k`` bits.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SimulationError

#: Refuse to build full-space operators beyond this register width: the state
#: alone is 2^26 complex amplitudes = 1 GiB at complex128.
MAX_SPARSE_QUBITS = 26

#: Refuse to build a single operator with more stored entries than this
#: (2^27 entries ≈ 3 GiB of CSR data+indices).  A gate with ``g`` nonzeros on
#: an ``n``-qubit register embeds to ``g · 2^(n-k)`` entries, so wide *dense*
#: blocks — e.g. the output of aggressive gate fusion — hit this long before
#: MAX_SPARSE_QUBITS does; the cure is a smaller ``fusion_max_qubits`` or
#: ``optimize_level=0``, not a bigger machine.
MAX_SPARSE_OPERATOR_NNZ = 1 << 27


def _scatter_bits(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Scatter the low ``len(positions)`` bits of each value to bit positions.

    ``positions[0]`` receives the *most significant* of the value's bits,
    matching the qubit-0-is-MSB convention used across the library.
    """
    out = np.zeros_like(values)
    width = len(positions)
    for bit, pos in enumerate(positions):
        out |= ((values >> (width - 1 - bit)) & 1) << pos
    return out


def gate_sparse_operator(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> sp.csr_matrix:
    """CSR operator applying ``matrix`` to ``qubits`` of an ``n``-qubit register.

    ``matrix`` is ``2^k × 2^k`` with the first qubit of ``qubits`` as its most
    significant bit, exactly as :func:`~repro.circuits.statevector.apply_matrix`
    interprets it.
    """
    if num_qubits > MAX_SPARSE_QUBITS:
        raise SimulationError(
            f"refusing to build sparse operators on {num_qubits} qubits "
            f"(limit {MAX_SPARSE_QUBITS})"
        )
    k = len(qubits)
    if np.shape(matrix) != (1 << k, 1 << k):
        raise SimulationError(
            f"matrix shape {np.shape(matrix)} does not match {k} target qubits"
        )
    gate = sp.coo_matrix(sp.csr_matrix(np.asarray(matrix, dtype=complex)))
    nnz = gate.nnz << (num_qubits - k)
    if nnz > MAX_SPARSE_OPERATOR_NNZ:
        raise SimulationError(
            f"embedding a {k}-qubit gate with {gate.nnz} nonzeros on "
            f"{num_qubits} qubits needs {nnz} stored entries "
            f"(limit {MAX_SPARSE_OPERATOR_NNZ}); reduce fusion_max_qubits or "
            "disable gate fusion (optimize_level=0) for the sparse backend"
        )
    # Bit position of qubit q in the basis-state index (qubit 0 = MSB).
    gate_positions = [num_qubits - 1 - q for q in qubits]
    rest_positions = [p for p in range(num_qubits) if p not in set(gate_positions)]
    # Any bijection onto the rest-bit patterns works; enumerate them all.
    rest = _scatter_bits(
        np.arange(1 << len(rest_positions), dtype=np.int64), rest_positions
    )
    rows = (_scatter_bits(gate.row.astype(np.int64), gate_positions)[None, :]
            | rest[:, None]).ravel()
    cols = (_scatter_bits(gate.col.astype(np.int64), gate_positions)[None, :]
            | rest[:, None]).ravel()
    data = np.broadcast_to(gate.data, (rest.size, gate.data.size)).ravel()
    dim = 1 << num_qubits
    return sp.csr_matrix((data, (rows, cols)), shape=(dim, dim))


def circuit_sparse_operators(circuit: QuantumCircuit) -> tuple[sp.csr_matrix, ...]:
    """One full-space CSR operator per instruction, in application order."""
    return tuple(
        gate_sparse_operator(instr.gate.matrix(), instr.qubits, circuit.num_qubits)
        for instr in circuit
    )


def apply_circuit_sparse(
    circuit: QuantumCircuit,
    state: np.ndarray,
    operators: Sequence[sp.spmatrix] | None = None,
) -> np.ndarray:
    """Evolve a dense state vector through ``circuit`` via sparse matvecs.

    ``operators`` lets a caller reuse the (cacheable) output of
    :func:`circuit_sparse_operators` across runs — the compile pipeline's
    ``run_many`` does exactly that.
    """
    vec = np.asarray(state, dtype=complex).reshape(-1)
    if vec.shape[0] != 1 << circuit.num_qubits:
        raise SimulationError(
            f"state of dimension {vec.shape[0]} does not fit "
            f"{circuit.num_qubits} qubits"
        )
    if operators is None:
        operators = circuit_sparse_operators(circuit)
    for op in operators:
        vec = op @ vec
    if circuit.global_phase:
        vec = vec * np.exp(1j * circuit.global_phase)
    return vec
