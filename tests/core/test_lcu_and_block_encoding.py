"""Unit tests for the LCU machinery and the ≤6-unitary term block encoding (Section IV)."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, circuit_unitary
from repro.core import (
    block_encoding,
    cnx_on_pair,
    cnz_cnz_on_pair,
    cnz_on_state,
    fragment_block_encoding,
    hamiltonian_block_encoding,
    hamiltonian_lcu_decomposition,
    pauli_lcu_decomposition,
    prepare_circuit,
    split_complex_fragment,
    term_lcu_decomposition,
    term_unitary_count,
)
from repro.core.lcu import LCUDecomposition
from repro.exceptions import BlockEncodingError
from repro.operators import Hamiltonian, PauliOperator, SCBTerm
from repro.operators.hamiltonian import HermitianFragment
from repro.utils.linalg import is_unitary, spectral_norm_diff


class TestElementaryUnitaries:
    def test_cnz_on_state(self):
        circuit = cnz_on_state(3, (0, 1, 2), (1, 0, 1))
        unitary = circuit_unitary(circuit)
        expected = np.eye(8, dtype=complex)
        expected[0b101, 0b101] = -1
        np.testing.assert_allclose(unitary, expected, atol=1e-12)

    def test_cnz_single_qubit(self):
        circuit = cnz_on_state(2, (1,), (0,))
        unitary = circuit_unitary(circuit)
        np.testing.assert_allclose(np.diag(unitary), [-1, 1, -1, 1], atol=1e-12)

    def test_cnz_requires_qubits(self):
        with pytest.raises(BlockEncodingError):
            cnz_on_state(2, (), ())

    def test_cnx_on_pair_swaps_complementary_states(self):
        # |a> = |10>, |b> = |01> on qubits (0, 1)
        circuit = cnx_on_pair(2, (0, 1), (1, 0))
        unitary = circuit_unitary(circuit)
        expected = np.eye(4, dtype=complex)
        expected[[1, 2]] = expected[[2, 1]]
        np.testing.assert_allclose(unitary, expected, atol=1e-12)

    def test_cnx_fig6_example(self):
        # Fig. 6: |a> = |1000110>, |b> = |0111001> on 7 qubits.
        ket_bits = (1, 0, 0, 0, 1, 1, 0)
        circuit = cnx_on_pair(7, tuple(range(7)), ket_bits)
        unitary = circuit_unitary(circuit)
        a, b = 0b1000110, 0b0111001
        assert unitary[a, b] == pytest.approx(1.0)
        assert unitary[b, a] == pytest.approx(1.0)
        assert unitary[a, a] == pytest.approx(0.0)
        # Any untouched state stays put.
        assert unitary[5, 5] == pytest.approx(1.0)

    def test_cnz_cnz_on_pair(self):
        ket_bits = (1, 0, 1)
        circuit = cnz_cnz_on_pair(3, (0, 1, 2), ket_bits)
        unitary = circuit_unitary(circuit)
        a, b = 0b101, 0b010
        diag = np.diag(unitary)
        assert diag[a] == pytest.approx(-1.0)
        assert diag[b] == pytest.approx(-1.0)
        others = [i for i in range(8) if i not in (a, b)]
        np.testing.assert_allclose(diag[others], np.ones(6), atol=1e-12)

    def test_cnz_cnz_single_transition_qubit_is_minus_identity(self):
        circuit = cnz_cnz_on_pair(1, (0,), (1,))
        np.testing.assert_allclose(circuit_unitary(circuit), -np.eye(2), atol=1e-12)


class TestTermLCU:
    CASES = [
        ("nsd", 0.8, 6),
        ("ZYsd", -0.6, 3),
        ("nXm", 0.4, 2),
        ("nn", 1.2, 2),
        ("sdds", 0.5, 3),
        ("XZ", 0.9, 1),
        ("nmsdXY", 0.3, 6),
    ]

    @pytest.mark.parametrize("label,coeff,expected_unitaries", CASES)
    def test_decomposition_reconstructs_fragment(self, label, coeff, expected_unitaries):
        term = SCBTerm.from_label(label, coeff)
        fragment = HermitianFragment(term, include_hc=not term.is_hermitian)
        decomposition = term_lcu_decomposition(fragment)
        assert decomposition.num_unitaries <= 6
        assert decomposition.num_unitaries == expected_unitaries
        assert decomposition.reconstruction_error(fragment.matrix()) < 1e-9

    @pytest.mark.parametrize("label,coeff,expected_unitaries", CASES)
    def test_every_lcu_member_is_unitary(self, label, coeff, expected_unitaries):
        term = SCBTerm.from_label(label, coeff)
        fragment = HermitianFragment(term, include_hc=not term.is_hermitian)
        for lcu_term in term_lcu_decomposition(fragment).terms:
            assert is_unitary(circuit_unitary(lcu_term.circuit))

    def test_term_unitary_count_formula(self):
        assert term_unitary_count(SCBTerm.from_label("nsdXm")) == 6
        assert term_unitary_count(SCBTerm.from_label("sd")) == 3
        assert term_unitary_count(SCBTerm.from_label("nm")) == 2
        assert term_unitary_count(SCBTerm.from_label("XYZ")) == 1

    def test_mixed_complex_coefficient_rejected(self):
        fragment = HermitianFragment(SCBTerm.from_label("sd", 0.2 + 1j), True)
        with pytest.raises(BlockEncodingError):
            term_lcu_decomposition(fragment)

    def test_pure_imaginary_coefficient_supported(self):
        fragment = HermitianFragment(SCBTerm.from_label("nsd", 0.7j), True)
        decomposition = term_lcu_decomposition(fragment)
        assert decomposition.num_unitaries <= 6
        assert decomposition.reconstruction_error(fragment.matrix()) < 1e-9

    def test_pure_imaginary_without_transition_rejected(self):
        fragment = HermitianFragment(SCBTerm.from_label("nZ", 0.7j), True)
        with pytest.raises(BlockEncodingError):
            term_lcu_decomposition(fragment)

    def test_split_complex_fragment(self):
        fragment = HermitianFragment(SCBTerm.from_label("sd", 0.3 + 0.4j), True)
        pieces = split_complex_fragment(fragment)
        assert len(pieces) == 2
        total = sum(piece.matrix() for piece in pieces)
        np.testing.assert_allclose(total, fragment.matrix(), atol=1e-12)

    def test_pyramid_basis_change_mode(self):
        term = SCBTerm.from_label("sdds", 0.5)
        fragment = HermitianFragment(term, True)
        decomposition = term_lcu_decomposition(fragment, basis_change_mode="pyramid")
        assert decomposition.reconstruction_error(fragment.matrix()) < 1e-9


class TestBlockEncodingCircuits:
    @pytest.mark.parametrize("label,coeff", [("nsd", 0.8), ("nXm", 0.4), ("sdds", -0.5)])
    def test_fragment_block_encoding(self, label, coeff):
        term = SCBTerm.from_label(label, coeff)
        fragment = HermitianFragment(term, include_hc=not term.is_hermitian)
        be = fragment_block_encoding(fragment)
        assert be.verification_error(fragment.matrix()) < 1e-8
        assert be.num_ancillas <= 3

    def test_hamiltonian_block_encoding(self):
        ham = Hamiltonian(3)
        ham.add_label("nsI", 0.8)
        ham.add_label("IZZ", 0.3)
        ham.add_label("Xsd", 0.5)
        be = hamiltonian_block_encoding(ham)
        assert be.verification_error(ham.matrix()) < 1e-8

    def test_hamiltonian_block_encoding_with_complex_terms(self):
        ham = Hamiltonian(2)
        ham.add_label("sd", 0.4 + 0.3j)
        ham.add_label("nZ", 0.2)
        be = hamiltonian_block_encoding(ham)
        assert be.verification_error(ham.matrix()) < 1e-8

    def test_scale_equals_one_norm(self):
        ham = Hamiltonian(2)
        ham.add_label("nZ", 0.5)
        decomposition = hamiltonian_lcu_decomposition(ham)
        be = block_encoding(decomposition)
        assert be.scale == pytest.approx(decomposition.one_norm())

    def test_block_encoding_unitary(self):
        term = SCBTerm.from_label("nsd", 0.8)
        be = fragment_block_encoding(HermitianFragment(term, True))
        assert is_unitary(circuit_unitary(be.circuit))

    def test_empty_decomposition_rejected(self):
        with pytest.raises(BlockEncodingError):
            block_encoding(LCUDecomposition(2))


class TestPrepareAndPauliLCU:
    def test_prepare_state(self):
        amplitudes = np.sqrt([0.5, 0.25, 0.25])
        circuit = prepare_circuit(list(amplitudes), 2)
        from repro.circuits import Statevector

        state = Statevector.zero_state(2).evolve(circuit)
        expected = np.append(amplitudes, 0.0)
        np.testing.assert_allclose(np.abs(state.data), expected, atol=1e-9)

    def test_prepare_rejects_negative(self):
        with pytest.raises(BlockEncodingError):
            prepare_circuit([-0.1, 1.1], 1)

    def test_prepare_rejects_zero_vector(self):
        with pytest.raises(BlockEncodingError):
            prepare_circuit([0.0, 0.0], 1)

    def test_pauli_lcu_block_encoding(self):
        op = PauliOperator({"ZZ": 0.4, "XI": 0.3, "IY": -0.2})
        decomposition = pauli_lcu_decomposition(op)
        assert decomposition.num_unitaries == 3
        be = block_encoding(decomposition)
        assert be.verification_error(op.matrix()) < 1e-8

    def test_width_mismatch_in_decomposition(self):
        decomposition = LCUDecomposition(2)
        with pytest.raises(BlockEncodingError):
            decomposition.add(1.0, QuantumCircuit(3))
