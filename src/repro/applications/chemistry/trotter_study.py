"""Full-Hamiltonian Trotter-error study (Section V-B.2).

For the whole electronic Hamiltonian an extra Trotter error appears between
non-commuting fragments, and the two strategies split the Hamiltonian
differently:

* the **direct / fermionic** partition has one fragment per gathered ladder
  term (the fragments the paper calls electronic transitions);
* the **Pauli** partition has one fragment per Pauli string.

This module measures both errors for the same total evolution so the
benchmarks can reproduce the qualitative finding the paper cites (fermionic
partitioning tends to give less Trotter error per step).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.applications.chemistry.fermion import FermionOperator
from repro.applications.chemistry.jordan_wigner import jordan_wigner_scb
from repro.operators.hamiltonian import Hamiltonian


@dataclass(frozen=True)
class TrotterComparison:
    """Trotter errors and circuit sizes for the two partitionings."""

    time: float
    steps: int
    order: int
    direct_error: float
    pauli_error: float
    direct_fragment_count: int
    pauli_fragment_count: int
    direct_rotations: int
    pauli_rotations: int

    def summary(self) -> str:
        return (
            f"t={self.time}, steps={self.steps}, order={self.order}: "
            f"direct err {self.direct_error:.3e} ({self.direct_fragment_count} fragments, "
            f"{self.direct_rotations} rotations) | pauli err {self.pauli_error:.3e} "
            f"({self.pauli_fragment_count} strings, {self.pauli_rotations} rotations)"
        )


def chemistry_simulation_problem(
    fermion_operator: FermionOperator,
    time: float,
    *,
    steps: int = 1,
    order: int = 1,
    num_modes: int | None = None,
):
    """Jordan–Wigner the fermionic operator into a pipeline-ready problem."""
    from repro.compile.problem import SimulationProblem

    hamiltonian = jordan_wigner_scb(fermion_operator, num_modes)
    return SimulationProblem(
        hamiltonian, time, steps=steps, order=order, name="chemistry-jw"
    )


def compare_partitionings(
    fermion_operator: FermionOperator,
    time: float,
    *,
    steps: int = 1,
    order: int = 1,
    num_modes: int | None = None,
    session=None,
) -> TrotterComparison:
    """Build both Trotter circuits for a fermionic operator and measure their errors."""
    hamiltonian = jordan_wigner_scb(fermion_operator, num_modes)
    return compare_partitionings_scb(
        hamiltonian, time, steps=steps, order=order, session=session
    )


def compare_partitionings_scb(
    hamiltonian: Hamiltonian,
    time: float,
    *,
    steps: int = 1,
    order: int = 1,
    session=None,
) -> TrotterComparison:
    """Same comparison starting from an SCB Hamiltonian (pipeline-backed).

    With a :class:`~repro.runtime.session.Session`, compiled programs come
    from the session's memo and both partitioning errors are
    content-addressed in its result cache.
    """
    from repro.analysis.trotter_error import cached_program_error
    from repro.compile.pipeline import compare_all
    from repro.compile.problem import SimulationProblem

    n = hamiltonian.num_qubits
    problem = SimulationProblem(hamiltonian, time, steps=steps, order=order)
    sweep = compare_all(problem, session=session)
    direct_circuit = sweep["direct"].circuit
    pauli_circuit = sweep["pauli"].circuit

    if n <= 9:
        direct_error = cached_program_error(
            hamiltonian, sweep["direct"], time, use_norm=True, session=session
        )
        pauli_error = cached_program_error(
            hamiltonian, sweep["pauli"], time, use_norm=True, session=session
        )
    else:
        # Pass the programs: beyond the dense regime the state error batches
        # its random states through the mask-plan kernel engine.
        direct_error = cached_program_error(
            hamiltonian, sweep["direct"], time, use_norm=False, rng=0, session=session
        )
        pauli_error = cached_program_error(
            hamiltonian, sweep["pauli"], time, use_norm=False, rng=0, session=session
        )

    return TrotterComparison(
        time=time,
        steps=steps,
        order=order,
        direct_error=direct_error,
        pauli_error=pauli_error,
        direct_fragment_count=sweep["direct"].estimate().fragments,
        pauli_fragment_count=sweep["pauli"].estimate().fragments,
        direct_rotations=direct_circuit.num_rotation_gates(),
        pauli_rotations=pauli_circuit.num_rotation_gates(),
    )
